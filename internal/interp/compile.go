package interp

// The compiled execution engine. A compile pass walks each function once
// and emits slot-resolved closures: scalar references become integer
// indices into a flat per-call frame, array references and builtin calls
// are resolved at compile time, and int vs float arithmetic is
// specialized into distinct closure variants. Runtime errors propagate as
// engineErr panics recovered at the Call boundary (and at worker
// goroutine tops), so the hot path carries no error returns.
//
// Semantics deliberately mirror the tree walker (the reference oracle
// behind Machine.Interp = "tree") with one documented relaxation: the
// tree walker scopes implicitly-defined scalars (and locally declared
// names) per block, while the compiled engine gives every name one flat
// slot per function. Programs that read a dead block's variable — which
// error under the tree walker — may observe a stale slot here. The
// corpus (and any well-formed program) never does this; the differential
// test layer pins the engines together on all twelve benchmarks.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/cminus"
	"repro/internal/parallelize"
)

// engineErr wraps a runtime error for panic-based propagation.
type engineErr struct{ err error }

func throwf(format string, args ...any) {
	panic(engineErr{fmt.Errorf(format, args...)})
}

// control is the statement outcome code (the compiled analogue of the
// tree walker's errReturn/errBreak/errContinue sentinels).
type control uint8

const (
	ctlNext control = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

// Typed closures: every expression is statically int or float.
type (
	iexpr func(fr *frame) int64
	fexpr func(fr *frame) float64
	bexpr func(fr *frame) bool
	cstmt func(fr *frame) control
)

// ctyp is the static type of an expression.
type ctyp uint8

const (
	tInt ctyp = iota
	tFloat
)

// compiledProgram caches the compiled form of a machine's program for a
// specific plan (plans change rarely; the pointer is the cache key).
type compiledProgram struct {
	plan  *parallelize.Plan
	funcs map[string]*cfunc
}

// Scalar symbol kinds.
const (
	syLocalInt uint8 = iota // slot in frame.ints
	syLocalFlt              // slot in frame.flts
	syGlobal                // captured *Value cell in m.Globals
	syCell                  // slot in frame.cells (privatizable global)
	syUnbound               // never assigned nor declared: reads error
)

type scalarSym struct {
	kind  uint8
	idx   int
	g     *Value // syGlobal / syCell
	float bool
	name  string
}

func (s *scalarSym) typ() ctyp {
	if s.float {
		return tFloat
	}
	return tInt
}

type arraySym struct {
	slot  int
	float bool // declared element type (runtime re-checks actual arrays)
	local bool // declared by a DeclStmt (allocated at decl execution)
}

// compiler compiles one program for one machine+plan.
type compiler struct {
	m     *Machine
	funcs map[string]*cfunc
}

func compileProgram(m *Machine) *compiledProgram {
	c := &compiler{m: m, funcs: map[string]*cfunc{}}
	for _, fn := range m.Prog.Funcs {
		if fn.Body != nil {
			c.compileFunc(fn)
		}
	}
	return &compiledProgram{plan: m.Plan, funcs: c.funcs}
}

func (c *compiler) compileFunc(fn *cminus.FuncDecl) *cfunc {
	if cf, ok := c.funcs[fn.Name]; ok {
		return cf
	}
	cf := newCfunc(fn)
	// Register the shell before compiling the body so recursive calls
	// resolve; cf.body is read at call time, after compilation finished.
	c.funcs[fn.Name] = cf
	fc := &fnCompiler{
		c:       c,
		fn:      fn,
		cf:      cf,
		scalars: map[string]*scalarSym{},
		arrays:  map[string]*arraySym{},
		fp:      c.funcPlan(fn.Name),
	}
	fc.resolve()
	cf.body = fc.compileBlock(fn.Body)
	cf.finish(fc)
	return cf
}

func (c *compiler) funcPlan(name string) *parallelize.FuncPlan {
	if c.m.Plan == nil {
		return nil
	}
	return c.m.Plan.Funcs[name]
}

// fnCompiler holds the per-function symbol tables.
type fnCompiler struct {
	c       *compiler
	fn      *cminus.FuncDecl
	cf      *cfunc
	scalars map[string]*scalarSym
	arrays  map[string]*arraySym
	fp      *parallelize.FuncPlan
	loops   []*cminus.ForStmt // dense source-order loop ids
}

// ---- resolution pass ----

func (fc *fnCompiler) newScalarSlot(name string, float bool) *scalarSym {
	s := &scalarSym{name: name, float: float}
	if float {
		s.kind = syLocalFlt
		s.idx = fc.cf.nFlts
		fc.cf.nFlts++
	} else {
		s.kind = syLocalInt
		s.idx = fc.cf.nInts
		fc.cf.nInts++
	}
	fc.scalars[name] = s
	return s
}

func (fc *fnCompiler) newArraySlot(name string, float, local bool) *arraySym {
	a := &arraySym{slot: fc.cf.nArrs, float: float, local: local}
	fc.cf.nArrs++
	fc.arrays[name] = a
	return a
}

// resolve assigns frame slots: parameters, declared locals, implicitly
// assigned scalars, referenced arrays, and — for globals privatized or
// reduced by some chosen parallel loop — cell slots.
func (fc *fnCompiler) resolve() {
	fc.loops = cminus.NumberLoops(fc.fn.Body)

	// Parameters.
	for _, prm := range fc.fn.Params {
		isFloat := cminus.IsFloatType(prm.Type)
		if prm.PtrDeep > 0 || len(prm.Dims) > 0 {
			a := fc.newArraySlot(prm.Name, isFloat, false)
			fc.cf.params = append(fc.cf.params, paramSlot{name: prm.Name, kind: psArr, idx: a.slot})
			continue
		}
		s := fc.newScalarSlot(prm.Name, isFloat)
		kind := psInt
		if isFloat {
			kind = psFlt
		}
		fc.cf.params = append(fc.cf.params, paramSlot{name: prm.Name, kind: kind, idx: s.idx})
	}

	// Declared locals (scalars and arrays), anywhere in the body.
	cminus.WalkStmts(fc.fn.Body, func(s cminus.Stmt) bool {
		d, ok := s.(*cminus.DeclStmt)
		if !ok {
			return true
		}
		isFloat := cminus.IsFloatType(d.Type)
		for _, it := range d.Items {
			if len(it.Dims) > 0 || it.PtrDeep > 0 {
				if fc.arrays[it.Name] == nil {
					fc.newArraySlot(it.Name, isFloat, true)
				}
				continue
			}
			if fc.scalars[it.Name] == nil {
				fc.newScalarSlot(it.Name, isFloat)
			}
		}
		return true
	})

	// Arrays referenced by subscript or passed to user calls but not
	// declared here: bound from m.Arrays at call entry (possibly absent —
	// access then errors, like the tree walker's lazy lookup).
	bindEntryArray := func(name string) {
		if fc.arrays[name] != nil {
			return
		}
		float := false
		if a, ok := fc.c.m.Arrays[name]; ok {
			float = a.Float
		}
		sym := fc.newArraySlot(name, float, false)
		fc.cf.entryArrs = append(fc.cf.entryArrs, entryArr{slot: sym.slot, name: name})
	}
	cminus.WalkStmts(fc.fn.Body, func(s cminus.Stmt) bool {
		cminus.StmtExprs(s, func(e cminus.Expr) bool {
			switch x := e.(type) {
			case *cminus.IndexExpr:
				if name, _, ok := cminus.ArrayBase(x); ok {
					bindEntryArray(name)
				}
			case *cminus.CallExpr:
				if callee := fc.c.m.Prog.Func(x.Fun); callee != nil && callee.Body != nil {
					for i, prm := range callee.Params {
						if i >= len(x.Args) {
							break
						}
						if prm.PtrDeep > 0 || len(prm.Dims) > 0 {
							if id, ok := x.Args[i].(*cminus.Ident); ok {
								bindEntryArray(id.Name)
							}
						}
					}
				}
			}
			return true
		})
		return true
	})

	// Implicitly assigned scalars (normalized loop indices): a plain
	// assignment to an undeclared, non-global name defines it, typed by
	// its first RHS.
	cminus.WalkStmts(fc.fn.Body, func(s cminus.Stmt) bool {
		as, ok := s.(*cminus.AssignStmt)
		if !ok {
			return true
		}
		id, ok := as.LHS.(*cminus.Ident)
		if !ok {
			return true
		}
		if fc.scalars[id.Name] != nil {
			return true
		}
		if _, isGlobal := fc.c.m.Globals[id.Name]; isGlobal {
			return true
		}
		fc.newScalarSlot(id.Name, fc.typeOf(as.RHS) == tFloat)
		return true
	})

	// Globals touched by a chosen parallel loop's private/reduction
	// clauses (or used as its index) get cell slots, so workers can swap
	// in private cells while normal frames alias the real global.
	promote := func(name string) {
		s := fc.resolveScalar(name)
		if s.kind != syGlobal {
			return
		}
		s.kind = syCell
		s.idx = fc.cf.nCells
		fc.cf.nCells++
		fc.cf.entryCells = append(fc.cf.entryCells, entryCell{slot: s.idx, g: s.g})
	}
	for _, loop := range fc.loops {
		lp := fc.planFor(loop)
		if lp == nil || !lp.Chosen {
			continue
		}
		d := lp.Decision
		for _, p := range d.Privates {
			promote(p)
		}
		for v := range d.Reductions {
			promote(v)
		}
		if ivar, _, ok := initVarName(loop.Init); ok {
			promote(ivar)
		}
	}
}

// planFor finds the plan for a loop by its dense id, falling back to the
// label map when the ids disagree (e.g. a hand-built plan).
func (fc *fnCompiler) planFor(loop *cminus.ForStmt) *parallelize.LoopPlan {
	if fc.fp == nil {
		return nil
	}
	for i, l := range fc.loops {
		if l == loop {
			if lp := fc.fp.LoopAt(i); lp != nil && lp.Label == loop.Label {
				return lp
			}
			break
		}
	}
	return fc.fp.Loops[loop.Label]
}

// resolveScalar memoizes name resolution: local slot, global cell, the
// runtime-check "_max" alias, or unbound.
func (fc *fnCompiler) resolveScalar(name string) *scalarSym {
	if s, ok := fc.scalars[name]; ok {
		return s
	}
	if g, ok := fc.c.m.Globals[name]; ok {
		s := &scalarSym{kind: syGlobal, g: g, float: g.Float, name: name}
		fc.scalars[name] = s
		return s
	}
	// Counter_max symbols used by runtime checks resolve to the current
	// value of the underlying counter.
	if base, ok := strings.CutSuffix(name, "_max"); ok && base != "" {
		if s := fc.peekScalar(base); s != nil {
			fc.scalars[name] = s
			return s
		}
	}
	s := &scalarSym{kind: syUnbound, name: name}
	fc.scalars[name] = s
	return s
}

// peekScalar resolves without creating unbound entries.
func (fc *fnCompiler) peekScalar(name string) *scalarSym {
	if s, ok := fc.scalars[name]; ok {
		if s.kind == syUnbound {
			return nil
		}
		return s
	}
	if g, ok := fc.c.m.Globals[name]; ok {
		s := &scalarSym{kind: syGlobal, g: g, float: g.Float, name: name}
		fc.scalars[name] = s
		return s
	}
	return nil
}

// ---- static typing ----

func promoteTyp(a, b ctyp) ctyp {
	if a == tFloat || b == tFloat {
		return tFloat
	}
	return tInt
}

func (fc *fnCompiler) typeOf(e cminus.Expr) ctyp {
	switch x := e.(type) {
	case *cminus.IntLit, *cminus.StringLit:
		return tInt
	case *cminus.FloatLit:
		return tFloat
	case *cminus.Ident:
		if s := fc.peekScalar(x.Name); s != nil {
			return s.typ()
		}
		if base, ok := strings.CutSuffix(x.Name, "_max"); ok && base != "" {
			if s := fc.peekScalar(base); s != nil {
				return s.typ()
			}
		}
		return tInt
	case *cminus.BinaryExpr:
		switch x.Op {
		case "+", "-", "*", "/":
			return promoteTyp(fc.typeOf(x.X), fc.typeOf(x.Y))
		default:
			// Comparisons, logical, %, bitwise, shifts are int-valued.
			return tInt
		}
	case *cminus.UnaryExpr:
		switch x.Op {
		case "-", "++", "--":
			return fc.typeOf(x.X)
		default: // !, ~
			return tInt
		}
	case *cminus.CondExpr:
		return promoteTyp(fc.typeOf(x.T), fc.typeOf(x.F))
	case *cminus.IndexExpr:
		if name, _, ok := cminus.ArrayBase(x); ok {
			if a := fc.arrays[name]; a != nil && a.float {
				return tFloat
			}
		}
		return tInt
	case *cminus.CallExpr:
		if fn := fc.c.m.Prog.Func(x.Fun); fn != nil && fn.Body != nil {
			if cminus.IsFloatType(fn.RetType) {
				return tFloat
			}
			return tInt
		}
		if x.Fun == "abs" {
			return tInt
		}
		return tFloat // builtins
	case *cminus.CastExpr:
		if cminus.IsFloatType(x.Type) {
			return tFloat
		}
		return tInt
	}
	return tInt
}

// ---- expression compilation ----

// asI compiles e as an int64 closure, truncating float results.
func (fc *fnCompiler) asI(e cminus.Expr) iexpr {
	if fc.typeOf(e) == tInt {
		return fc.compileI(e)
	}
	f := fc.compileF(e)
	return func(fr *frame) int64 { return int64(f(fr)) }
}

// asF compiles e as a float64 closure, widening int results.
func (fc *fnCompiler) asF(e cminus.Expr) fexpr {
	if fc.typeOf(e) == tFloat {
		return fc.compileF(e)
	}
	i := fc.compileI(e)
	return func(fr *frame) float64 { return float64(i(fr)) }
}

// compileB compiles e in boolean context (truthiness), specializing
// comparisons and short-circuit operators to avoid materializing 0/1.
func (fc *fnCompiler) compileB(e cminus.Expr) bexpr {
	switch x := e.(type) {
	case *cminus.BinaryExpr:
		switch x.Op {
		case "&&":
			l, r := fc.compileB(x.X), fc.compileB(x.Y)
			return func(fr *frame) bool { return l(fr) && r(fr) }
		case "||":
			l, r := fc.compileB(x.X), fc.compileB(x.Y)
			return func(fr *frame) bool { return l(fr) || r(fr) }
		case "<", "<=", ">", ">=", "==", "!=":
			return fc.compileCmp(x)
		}
	case *cminus.UnaryExpr:
		if x.Op == "!" {
			b := fc.compileB(x.X)
			return func(fr *frame) bool { return !b(fr) }
		}
	}
	if fc.typeOf(e) == tFloat {
		f := fc.compileF(e)
		return func(fr *frame) bool { return f(fr) != 0 }
	}
	i := fc.compileI(e)
	return func(fr *frame) bool { return i(fr) != 0 }
}

func (fc *fnCompiler) compileCmp(x *cminus.BinaryExpr) bexpr {
	if promoteTyp(fc.typeOf(x.X), fc.typeOf(x.Y)) == tFloat {
		l, r := fc.asF(x.X), fc.asF(x.Y)
		switch x.Op {
		case "<":
			return func(fr *frame) bool { return l(fr) < r(fr) }
		case "<=":
			return func(fr *frame) bool { return l(fr) <= r(fr) }
		case ">":
			return func(fr *frame) bool { return l(fr) > r(fr) }
		case ">=":
			return func(fr *frame) bool { return l(fr) >= r(fr) }
		case "==":
			return func(fr *frame) bool { return l(fr) == r(fr) }
		default: // !=
			return func(fr *frame) bool { return l(fr) != r(fr) }
		}
	}
	l, r := fc.asI(x.X), fc.asI(x.Y)
	switch x.Op {
	case "<":
		return func(fr *frame) bool { return l(fr) < r(fr) }
	case "<=":
		return func(fr *frame) bool { return l(fr) <= r(fr) }
	case ">":
		return func(fr *frame) bool { return l(fr) > r(fr) }
	case ">=":
		return func(fr *frame) bool { return l(fr) >= r(fr) }
	case "==":
		return func(fr *frame) bool { return l(fr) == r(fr) }
	default: // !=
		return func(fr *frame) bool { return l(fr) != r(fr) }
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// compileI compiles a statically-int expression.
func (fc *fnCompiler) compileI(e cminus.Expr) iexpr {
	switch x := e.(type) {
	case *cminus.IntLit:
		v := x.Val
		return func(*frame) int64 { return v }
	case *cminus.StringLit:
		return func(*frame) int64 { return 0 }
	case *cminus.Ident:
		return fc.scalarReadI(x)
	case *cminus.BinaryExpr:
		switch x.Op {
		case "+":
			l, r := fc.compileI(x.X), fc.compileI(x.Y)
			return func(fr *frame) int64 { return l(fr) + r(fr) }
		case "-":
			l, r := fc.compileI(x.X), fc.compileI(x.Y)
			return func(fr *frame) int64 { return l(fr) - r(fr) }
		case "*":
			l, r := fc.compileI(x.X), fc.compileI(x.Y)
			return func(fr *frame) int64 { return l(fr) * r(fr) }
		case "/":
			l, r := fc.compileI(x.X), fc.compileI(x.Y)
			return func(fr *frame) int64 {
				a, b := l(fr), r(fr)
				if b == 0 {
					throwf("interp: integer division by zero")
				}
				return a / b
			}
		case "%":
			l, r := fc.asI(x.X), fc.asI(x.Y)
			return func(fr *frame) int64 {
				a, b := l(fr), r(fr)
				if b == 0 {
					throwf("interp: modulo by zero")
				}
				return a % b
			}
		case "<", "<=", ">", ">=", "==", "!=", "&&", "||":
			b := fc.compileB(x)
			return func(fr *frame) int64 { return b2i(b(fr)) }
		case "&":
			l, r := fc.asI(x.X), fc.asI(x.Y)
			return func(fr *frame) int64 { return l(fr) & r(fr) }
		case "|":
			l, r := fc.asI(x.X), fc.asI(x.Y)
			return func(fr *frame) int64 { return l(fr) | r(fr) }
		case "^":
			l, r := fc.asI(x.X), fc.asI(x.Y)
			return func(fr *frame) int64 { return l(fr) ^ r(fr) }
		case "<<":
			l, r := fc.asI(x.X), fc.asI(x.Y)
			return func(fr *frame) int64 { return l(fr) << uint(r(fr)) }
		case ">>":
			l, r := fc.asI(x.X), fc.asI(x.Y)
			return func(fr *frame) int64 { return l(fr) >> uint(r(fr)) }
		}
		op, pos := x.Op, x.P
		return func(*frame) int64 {
			throwf("interp: unsupported operator %q at %s", op, pos)
			return 0
		}
	case *cminus.UnaryExpr:
		switch x.Op {
		case "-":
			v := fc.compileI(x.X)
			return func(fr *frame) int64 { return -v(fr) }
		case "!":
			b := fc.compileB(x.X)
			return func(fr *frame) int64 { return b2i(!b(fr)) }
		case "~":
			v := fc.asI(x.X)
			return func(fr *frame) int64 { return ^v(fr) }
		case "++", "--":
			return fc.compileIncDecI(x)
		}
		// Unknown unary: the tree walker rejects the operator without
		// evaluating the operand.
		op, pos := x.Op, x.P
		return func(*frame) int64 {
			throwf("interp: unary %q at %s", op, pos)
			return 0
		}
	case *cminus.CondExpr:
		c := fc.compileB(x.C)
		t, f := fc.compileI(x.T), fc.compileI(x.F)
		return func(fr *frame) int64 {
			if c(fr) {
				return t(fr)
			}
			return f(fr)
		}
	case *cminus.IndexExpr:
		return fc.arrayReadI(x)
	case *cminus.CallExpr:
		i, _ := fc.compileCall(x, tInt)
		return i
	case *cminus.CastExpr:
		return fc.asI(x.X)
	}
	pos := e.Pos()
	return func(*frame) int64 {
		throwf("interp: unsupported expression %T at %s", e, pos)
		return 0
	}
}

// compileF compiles a statically-float expression.
func (fc *fnCompiler) compileF(e cminus.Expr) fexpr {
	switch x := e.(type) {
	case *cminus.FloatLit:
		var v float64
		if _, err := fmt.Sscanf(x.Text, "%g", &v); err != nil {
			text := x.Text
			return func(*frame) float64 {
				throwf("interp: bad float %q", text)
				return 0
			}
		}
		return func(*frame) float64 { return v }
	case *cminus.Ident:
		return fc.scalarReadF(x)
	case *cminus.BinaryExpr:
		switch x.Op {
		case "+":
			l, r := fc.asF(x.X), fc.asF(x.Y)
			return func(fr *frame) float64 { return l(fr) + r(fr) }
		case "-":
			l, r := fc.asF(x.X), fc.asF(x.Y)
			return func(fr *frame) float64 { return l(fr) - r(fr) }
		case "*":
			l, r := fc.asF(x.X), fc.asF(x.Y)
			return func(fr *frame) float64 { return l(fr) * r(fr) }
		case "/":
			l, r := fc.asF(x.X), fc.asF(x.Y)
			return func(fr *frame) float64 { return l(fr) / r(fr) }
		}
	case *cminus.UnaryExpr:
		switch x.Op {
		case "-":
			v := fc.compileF(x.X)
			return func(fr *frame) float64 { return -v(fr) }
		case "++", "--":
			return fc.compileIncDecF(x)
		}
	case *cminus.CondExpr:
		c := fc.compileB(x.C)
		t, f := fc.asF(x.T), fc.asF(x.F)
		return func(fr *frame) float64 {
			if c(fr) {
				return t(fr)
			}
			return f(fr)
		}
	case *cminus.IndexExpr:
		return fc.arrayReadF(x)
	case *cminus.CallExpr:
		_, f := fc.compileCall(x, tFloat)
		return f
	case *cminus.CastExpr:
		return fc.asF(x.X)
	}
	// A statically-int expression requested in float context.
	i := fc.compileI(e)
	return func(fr *frame) float64 { return float64(i(fr)) }
}

// ---- scalar access ----

func (fc *fnCompiler) scalarReadI(id *cminus.Ident) iexpr {
	s := fc.resolveScalar(id.Name)
	switch s.kind {
	case syLocalInt:
		idx := s.idx
		return func(fr *frame) int64 { return fr.ints[idx] }
	case syLocalFlt:
		idx := s.idx
		return func(fr *frame) int64 { return int64(fr.flts[idx]) }
	case syGlobal:
		g := s.g
		return func(*frame) int64 { return g.AsInt() }
	case syCell:
		idx := s.idx
		return func(fr *frame) int64 { return fr.cells[idx].AsInt() }
	}
	name, pos := id.Name, id.P
	return func(*frame) int64 {
		throwf("interp: unbound variable %q at %s", name, pos)
		return 0
	}
}

func (fc *fnCompiler) scalarReadF(id *cminus.Ident) fexpr {
	s := fc.resolveScalar(id.Name)
	switch s.kind {
	case syLocalFlt:
		idx := s.idx
		return func(fr *frame) float64 { return fr.flts[idx] }
	case syLocalInt:
		idx := s.idx
		return func(fr *frame) float64 { return float64(fr.ints[idx]) }
	case syGlobal:
		g := s.g
		return func(*frame) float64 { return g.AsFloat() }
	case syCell:
		idx := s.idx
		return func(fr *frame) float64 { return fr.cells[idx].AsFloat() }
	}
	name, pos := id.Name, id.P
	return func(*frame) float64 {
		throwf("interp: unbound variable %q at %s", name, pos)
		return 0
	}
}

// scalarStore emits a store of rhs (compiled at the target's type, which
// matches the tree walker's convert-to-cell-type assignment rule).
func (fc *fnCompiler) scalarStore(s *scalarSym, rhs cminus.Expr) cstmt {
	switch s.kind {
	case syLocalInt:
		idx, v := s.idx, fc.asI(rhs)
		return func(fr *frame) control {
			fr.ints[idx] = v(fr)
			return ctlNext
		}
	case syLocalFlt:
		idx, v := s.idx, fc.asF(rhs)
		return func(fr *frame) control {
			fr.flts[idx] = v(fr)
			return ctlNext
		}
	case syGlobal:
		g := s.g
		if g.Float {
			v := fc.asF(rhs)
			return func(fr *frame) control {
				g.F = v(fr)
				return ctlNext
			}
		}
		v := fc.asI(rhs)
		return func(fr *frame) control {
			g.I = v(fr)
			return ctlNext
		}
	case syCell:
		idx := s.idx
		if s.float {
			v := fc.asF(rhs)
			return func(fr *frame) control {
				fr.cells[idx].F = v(fr)
				return ctlNext
			}
		}
		v := fc.asI(rhs)
		return func(fr *frame) control {
			fr.cells[idx].I = v(fr)
			return ctlNext
		}
	}
	name := s.name
	return func(*frame) control {
		throwf("interp: unbound variable %q", name)
		return ctlNext
	}
}

// scalarRef returns typed load/store funcs for compound ops and ++/--.
func (fc *fnCompiler) scalarRefI(s *scalarSym, pos cminus.Position) (func(fr *frame) int64, func(fr *frame, v int64)) {
	switch s.kind {
	case syLocalInt:
		idx := s.idx
		return func(fr *frame) int64 { return fr.ints[idx] },
			func(fr *frame, v int64) { fr.ints[idx] = v }
	case syGlobal:
		g := s.g
		return func(*frame) int64 { return g.I },
			func(_ *frame, v int64) { g.I = v }
	case syCell:
		idx := s.idx
		return func(fr *frame) int64 { return fr.cells[idx].I },
			func(fr *frame, v int64) { fr.cells[idx].I = v }
	}
	name := s.name
	fail := func() {
		throwf("interp: unbound %q at %s", name, pos)
	}
	return func(*frame) int64 { fail(); return 0 }, func(*frame, int64) { fail() }
}

func (fc *fnCompiler) scalarRefF(s *scalarSym, pos cminus.Position) (func(fr *frame) float64, func(fr *frame, v float64)) {
	switch s.kind {
	case syLocalFlt:
		idx := s.idx
		return func(fr *frame) float64 { return fr.flts[idx] },
			func(fr *frame, v float64) { fr.flts[idx] = v }
	case syGlobal:
		g := s.g
		return func(*frame) float64 { return g.F },
			func(_ *frame, v float64) { g.F = v }
	case syCell:
		idx := s.idx
		return func(fr *frame) float64 { return fr.cells[idx].F },
			func(fr *frame, v float64) { fr.cells[idx].F = v }
	}
	name := s.name
	fail := func() {
		throwf("interp: unbound %q at %s", name, pos)
	}
	return func(*frame) float64 { fail(); return 0 }, func(*frame, float64) { fail() }
}

func (fc *fnCompiler) compileIncDecI(x *cminus.UnaryExpr) iexpr {
	id, ok := x.X.(*cminus.Ident)
	if !ok {
		op, pos := x.Op, x.P
		return func(*frame) int64 {
			throwf("interp: %s on non-identifier at %s", op, pos)
			return 0
		}
	}
	s := fc.resolveScalar(id.Name)
	delta := int64(1)
	if x.Op == "--" {
		delta = -1
	}
	load, store := fc.scalarRefI(s, x.P)
	if x.Postfix {
		return func(fr *frame) int64 {
			old := load(fr)
			store(fr, old+delta)
			return old
		}
	}
	return func(fr *frame) int64 {
		nv := load(fr) + delta
		store(fr, nv)
		return nv
	}
}

func (fc *fnCompiler) compileIncDecF(x *cminus.UnaryExpr) fexpr {
	id, ok := x.X.(*cminus.Ident)
	if !ok {
		op, pos := x.Op, x.P
		return func(*frame) float64 {
			throwf("interp: %s on non-identifier at %s", op, pos)
			return 0
		}
	}
	s := fc.resolveScalar(id.Name)
	delta := float64(1)
	if x.Op == "--" {
		delta = -1
	}
	load, store := fc.scalarRefF(s, x.P)
	if x.Postfix {
		return func(fr *frame) float64 {
			old := load(fr)
			store(fr, old+delta)
			return old
		}
	}
	return func(fr *frame) float64 {
		nv := load(fr) + delta
		store(fr, nv)
		return nv
	}
}

// ---- array access ----

// arrayAt compiles the subscript chain of an IndexExpr into an offset
// closure (bounds-checked, all indices evaluated exactly once).
func (fc *fnCompiler) arrayAt(e *cminus.IndexExpr, pos cminus.Position) (*arraySym, func(fr *frame) (*Array, int64)) {
	name, idxExprs, ok := cminus.ArrayBase(e)
	if !ok {
		pos := e.P
		return nil, func(*frame) (*Array, int64) {
			throwf("interp: unsupported index expression at %s", pos)
			return nil, 0
		}
	}
	sym := fc.arrays[name]
	if sym == nil {
		// Resolution registered every subscripted base; a miss means the
		// base is only reachable through dead code paths not walked (it
		// cannot happen for WalkStmts-visited bodies, but stay total).
		sym = fc.newArraySlot(name, false, false)
		fc.cf.entryArrs = append(fc.cf.entryArrs, entryArr{slot: sym.slot, name: name})
	}
	slot := sym.slot
	// Tree-walker order: unknown-array check, then every subscript
	// evaluated left to right, then rank, then bounds dim by dim.
	if len(idxExprs) == 1 {
		ix := fc.asI(idxExprs[0])
		return sym, func(fr *frame) (*Array, int64) {
			a := fr.arrs[slot]
			if a == nil {
				throwf("interp: unknown array %q at %s", name, pos)
			}
			i := ix(fr)
			if len(a.Dims) != 1 {
				throwf("interp: array %s indexed with 1 subscripts, has %d dims", a.Name, len(a.Dims))
			}
			if i < 0 || i >= a.Dims[0] {
				throwf("interp: array %s index %d out of range [0,%d) in dim 0", a.Name, i, a.Dims[0])
			}
			return a, i
		}
	}
	idx := make([]iexpr, len(idxExprs))
	for i, ie := range idxExprs {
		idx[i] = fc.asI(ie)
	}
	return sym, func(fr *frame) (*Array, int64) {
		a := fr.arrs[slot]
		if a == nil {
			throwf("interp: unknown array %q at %s", name, pos)
		}
		var buf [8]int64
		vals := buf[:0]
		if len(idx) > len(buf) {
			vals = make([]int64, 0, len(idx))
		}
		for _, fn := range idx {
			vals = append(vals, fn(fr))
		}
		if len(idx) != len(a.Dims) {
			throwf("interp: array %s indexed with %d subscripts, has %d dims", a.Name, len(idx), len(a.Dims))
		}
		var off int64
		for d, ix := range vals {
			if ix < 0 || ix >= a.Dims[d] {
				throwf("interp: array %s index %d out of range [0,%d) in dim %d", a.Name, ix, a.Dims[d], d)
			}
			off = off*a.Dims[d] + ix
		}
		return a, off
	}
}

func (fc *fnCompiler) arrayReadI(e *cminus.IndexExpr) iexpr {
	_, at := fc.arrayAt(e, e.P)
	return func(fr *frame) int64 {
		a, off := at(fr)
		if a.Float {
			return int64(a.Flts[off])
		}
		return a.Ints[off]
	}
}

func (fc *fnCompiler) arrayReadF(e *cminus.IndexExpr) fexpr {
	_, at := fc.arrayAt(e, e.P)
	return func(fr *frame) float64 {
		a, off := at(fr)
		if a.Float {
			return a.Flts[off]
		}
		return float64(a.Ints[off])
	}
}

// ---- calls ----

var builtins1 = map[string]func(float64) float64{
	"exp":   math.Exp,
	"sqrt":  math.Sqrt,
	"fabs":  math.Abs,
	"sin":   math.Sin,
	"cos":   math.Cos,
	"log":   math.Log,
	"floor": math.Floor,
	"ceil":  math.Ceil,
}

var builtins2 = map[string]func(float64, float64) float64{
	"pow":  math.Pow,
	"fmod": math.Mod,
	"fmin": math.Min,
	"fmax": math.Max,
}

// compileCall compiles a call at the requested static type; exactly one
// of the returned closures is non-nil.
func (fc *fnCompiler) compileCall(x *cminus.CallExpr, want ctyp) (iexpr, fexpr) {
	if fn := fc.c.m.Prog.Func(x.Fun); fn != nil && fn.Body != nil {
		return fc.compileUserCall(x, fn, want)
	}
	// Builtins: every argument evaluates as float, in order. The tree
	// walker checks arity after evaluating arguments; the compiled form
	// errors lazily too (at call execution), keeping dead calls inert.
	args := make([]fexpr, len(x.Args))
	for i, a := range x.Args {
		args[i] = fc.asF(a)
	}
	badArity := func(n int) (iexpr, fexpr) {
		fun := x.Fun
		if want == tInt {
			return func(fr *frame) int64 {
				for _, a := range args {
					a(fr)
				}
				throwf("interp: %s expects %d args", fun, n)
				return 0
			}, nil
		}
		return nil, func(fr *frame) float64 {
			for _, a := range args {
				a(fr)
			}
			throwf("interp: %s expects %d args", fun, n)
			return 0
		}
	}
	var res fexpr
	switch {
	case x.Fun == "abs":
		if len(args) != 1 {
			return badArity(1)
		}
		a := args[0]
		iv := func(fr *frame) int64 { return int64(math.Abs(a(fr))) }
		if want == tInt {
			return iv, nil
		}
		return nil, func(fr *frame) float64 { return float64(iv(fr)) }
	case builtins1[x.Fun] != nil:
		if len(args) != 1 {
			return badArity(1)
		}
		f, a := builtins1[x.Fun], args[0]
		res = func(fr *frame) float64 { return f(a(fr)) }
	case builtins2[x.Fun] != nil:
		if len(args) != 2 {
			return badArity(2)
		}
		f, a, b := builtins2[x.Fun], args[0], args[1]
		res = func(fr *frame) float64 { return f(a(fr), b(fr)) }
	default:
		fun := x.Fun
		res = func(fr *frame) float64 {
			for _, a := range args {
				a(fr)
			}
			throwf("interp: unknown function %q", fun)
			return 0
		}
	}
	if want == tInt {
		return func(fr *frame) int64 { return int64(res(fr)) }, nil
	}
	return nil, res
}

// compileUserCall binds arguments (arrays by reference, scalars by
// value, evaluated in parameter order like the tree walker) into a
// pooled callee frame and converts the return to the declared type.
func (fc *fnCompiler) compileUserCall(x *cminus.CallExpr, fn *cminus.FuncDecl, want ctyp) (iexpr, fexpr) {
	pos := x.P
	if len(x.Args) != len(fn.Params) {
		name, nw, ng := fn.Name, len(fn.Params), len(x.Args)
		fail := func() {
			throwf("interp: %s expects %d args, got %d at %s", name, nw, ng, pos)
		}
		if want == tInt {
			return func(*frame) int64 { fail(); return 0 }, nil
		}
		return nil, func(*frame) float64 { fail(); return 0 }
	}
	callee := fc.c.compileFunc(fn)
	type bindFn func(caller, cal *frame)
	binds := make([]bindFn, 0, len(fn.Params))
	for i := range fn.Params {
		ps := callee.params[i]
		switch ps.kind {
		case psArr:
			id, ok := x.Args[i].(*cminus.Ident)
			if !ok {
				argIdx, fname := i, fn.Name
				binds = append(binds, func(_, _ *frame) {
					throwf("interp: array argument %d of %s must be an identifier at %s", argIdx, fname, pos)
				})
				continue
			}
			src := fc.arrays[id.Name]
			if src == nil {
				// Not referenced as an array anywhere else in the
				// caller: bind lazily from m.Arrays, erroring like the
				// tree walker when absent.
				src = fc.newArraySlot(id.Name, false, false)
				fc.cf.entryArrs = append(fc.cf.entryArrs, entryArr{slot: src.slot, name: id.Name})
			}
			srcSlot, dstSlot := src.slot, ps.idx
			aname, fname := id.Name, fn.Name
			binds = append(binds, func(caller, cal *frame) {
				a := caller.arrs[srcSlot]
				if a == nil {
					throwf("interp: unknown array %q passed to %s at %s", aname, fname, pos)
				}
				cal.arrs[dstSlot] = a
			})
		case psFlt:
			v, dst := fc.asF(x.Args[i]), ps.idx
			binds = append(binds, func(caller, cal *frame) {
				cal.flts[dst] = v(caller)
			})
		default:
			v, dst := fc.asI(x.Args[i]), ps.idx
			binds = append(binds, func(caller, cal *frame) {
				cal.ints[dst] = v(caller)
			})
		}
	}
	m := fc.c.m
	run := func(caller *frame) Value {
		cal := callee.newFrame()
		callee.bindEntry(cal, m)
		for _, b := range binds {
			b(caller, cal)
		}
		cal.ret = Value{}
		callee.body(cal)
		ret := cal.ret
		callee.release(cal)
		return ret
	}
	if cminus.IsFloatType(fn.RetType) {
		f := func(fr *frame) float64 { return run(fr).AsFloat() }
		if want == tInt {
			return func(fr *frame) int64 { return int64(f(fr)) }, nil
		}
		return nil, f
	}
	iv := func(fr *frame) int64 { return run(fr).AsInt() }
	if want == tInt {
		return iv, nil
	}
	return nil, func(fr *frame) float64 { return float64(iv(fr)) }
}

// ---- statements ----

func (fc *fnCompiler) compileBlock(b *cminus.Block) cstmt {
	var stmts []cstmt
	for _, s := range b.Stmts {
		if cs := fc.compileStmt(s); cs != nil {
			stmts = append(stmts, cs)
		}
	}
	switch len(stmts) {
	case 0:
		return func(*frame) control { return ctlNext }
	case 1:
		return stmts[0]
	}
	return func(fr *frame) control {
		for _, s := range stmts {
			if ctl := s(fr); ctl != ctlNext {
				return ctl
			}
		}
		return ctlNext
	}
}

func (fc *fnCompiler) compileStmt(s cminus.Stmt) cstmt {
	switch x := s.(type) {
	case *cminus.DeclStmt:
		return fc.compileDecl(x)
	case *cminus.AssignStmt:
		return fc.compileAssign(x)
	case *cminus.ExprStmt:
		if fc.typeOf(x.X) == tFloat {
			v := fc.compileF(x.X)
			return func(fr *frame) control {
				v(fr)
				return ctlNext
			}
		}
		v := fc.compileI(x.X)
		return func(fr *frame) control {
			v(fr)
			return ctlNext
		}
	case *cminus.IfStmt:
		cond := fc.compileB(x.Cond)
		then := fc.compileBlock(x.Then)
		if x.Else == nil {
			return func(fr *frame) control {
				if cond(fr) {
					return then(fr)
				}
				return ctlNext
			}
		}
		els := fc.compileStmt(x.Else)
		return func(fr *frame) control {
			if cond(fr) {
				return then(fr)
			}
			return els(fr)
		}
	case *cminus.ForStmt:
		return fc.compileFor(x)
	case *cminus.WhileStmt:
		cond := fc.compileB(x.Cond)
		body := fc.compileBlock(x.Body)
		m := fc.c.m
		return func(fr *frame) control {
			for cond(fr) {
				m.interruptCompiled()
				switch body(fr) {
				case ctlBreak:
					return ctlNext
				case ctlReturn:
					return ctlReturn
				}
			}
			return ctlNext
		}
	case *cminus.Block:
		return fc.compileBlock(x)
	case *cminus.ReturnStmt:
		if x.X == nil {
			return func(fr *frame) control {
				fr.ret = Value{}
				return ctlReturn
			}
		}
		if fc.typeOf(x.X) == tFloat {
			v := fc.compileF(x.X)
			return func(fr *frame) control {
				fr.ret = FloatVal(v(fr))
				return ctlReturn
			}
		}
		v := fc.compileI(x.X)
		return func(fr *frame) control {
			fr.ret = IntVal(v(fr))
			return ctlReturn
		}
	case *cminus.BreakStmt:
		return func(*frame) control { return ctlBreak }
	case *cminus.ContinueStmt:
		return func(*frame) control { return ctlContinue }
	}
	return nil
}

// compileDecl zero-stores scalars (or evaluates initializers) and
// allocates fresh local arrays at each execution, matching the tree
// walker's fresh-scope-per-entry semantics.
func (fc *fnCompiler) compileDecl(x *cminus.DeclStmt) cstmt {
	isFloat := cminus.IsFloatType(x.Type)
	var parts []cstmt
	for _, it := range x.Items {
		if len(it.Dims) > 0 || it.PtrDeep > 0 {
			sym := fc.arrays[it.Name]
			dims := make([]iexpr, len(it.Dims))
			for i, d := range it.Dims {
				dims[i] = fc.asI(d)
			}
			slot, name, flt := sym.slot, it.Name, isFloat
			parts = append(parts, func(fr *frame) control {
				dv := make([]int64, len(dims))
				for i, d := range dims {
					dv[i] = d(fr)
				}
				if flt {
					fr.arrs[slot] = NewFloatArray(name, dv...)
				} else {
					fr.arrs[slot] = NewIntArray(name, dv...)
				}
				return ctlNext
			})
			continue
		}
		s := fc.scalars[it.Name]
		init := it.Init
		if init == nil {
			init = &cminus.IntLit{Val: 0}
		}
		parts = append(parts, fc.scalarStore(s, init))
	}
	switch len(parts) {
	case 0:
		return nil
	case 1:
		return parts[0]
	}
	return func(fr *frame) control {
		for _, p := range parts {
			p(fr)
		}
		return ctlNext
	}
}

func (fc *fnCompiler) compileAssign(x *cminus.AssignStmt) cstmt {
	if id, ok := x.LHS.(*cminus.Ident); ok {
		s := fc.resolveScalar(id.Name)
		if x.Op == "" {
			return fc.scalarStore(s, x.RHS)
		}
		// Compound op: RHS evaluates first (tree-walker order), the
		// combine runs at the promoted type (always int for %), and the
		// store converts back to the target's type.
		if x.Op == "%" || (s.typ() == tInt && fc.typeOf(x.RHS) == tInt) {
			rhs := fc.asI(x.RHS)
			comb := intCombine(x.Op)
			if s.typ() == tFloat {
				load, store := fc.scalarRefF(s, x.P)
				return func(fr *frame) control {
					r := rhs(fr)
					store(fr, float64(comb(int64(load(fr)), r)))
					return ctlNext
				}
			}
			load, store := fc.scalarRefI(s, x.P)
			return func(fr *frame) control {
				r := rhs(fr)
				store(fr, comb(load(fr), r))
				return ctlNext
			}
		}
		rhs := fc.asF(x.RHS)
		comb := floatCombine(x.Op)
		if s.typ() == tInt {
			load, store := fc.scalarRefI(s, x.P)
			return func(fr *frame) control {
				r := rhs(fr)
				store(fr, int64(comb(float64(load(fr)), r)))
				return ctlNext
			}
		}
		load, store := fc.scalarRefF(s, x.P)
		return func(fr *frame) control {
			r := rhs(fr)
			store(fr, comb(load(fr), r))
			return ctlNext
		}
	}
	// Array target.
	ix, ok := x.LHS.(*cminus.IndexExpr)
	if ok {
		if _, _, shaped := cminus.ArrayBase(ix); !shaped {
			ok = false
		}
	}
	if !ok {
		// Tree-walker order: the RHS evaluates (and may itself error)
		// before the target is rejected.
		pos := x.P
		if fc.typeOf(x.RHS) == tFloat {
			rhs := fc.asF(x.RHS)
			return func(fr *frame) control {
				rhs(fr)
				throwf("interp: unsupported assignment target at %s", pos)
				return ctlNext
			}
		}
		rhs := fc.asI(x.RHS)
		return func(fr *frame) control {
			rhs(fr)
			throwf("interp: unsupported assignment target at %s", pos)
			return ctlNext
		}
	}
	_, at := fc.arrayAt(ix, x.P)
	if x.Op == "" {
		if fc.typeOf(x.RHS) == tFloat {
			rhs := fc.compileF(x.RHS)
			return func(fr *frame) control {
				r := rhs(fr)
				a, off := at(fr)
				if a.Float {
					a.Flts[off] = r
				} else {
					a.Ints[off] = int64(r)
				}
				return ctlNext
			}
		}
		rhs := fc.compileI(x.RHS)
		return func(fr *frame) control {
			r := rhs(fr)
			a, off := at(fr)
			if a.Float {
				a.Flts[off] = float64(r)
			} else {
				a.Ints[off] = r
			}
			return ctlNext
		}
	}
	// Compound array update: RHS first, offset once, read-modify-write.
	// The combine follows the tree walker's dynamic promotion: the array
	// element's runtime type joins the RHS's static type.
	if fc.typeOf(x.RHS) == tFloat {
		rhs := fc.compileF(x.RHS)
		comb := floatCombine(x.Op)
		return func(fr *frame) control {
			r := rhs(fr)
			a, off := at(fr)
			if a.Float {
				a.Flts[off] = comb(a.Flts[off], r)
			} else {
				a.Ints[off] = int64(comb(float64(a.Ints[off]), r))
			}
			return ctlNext
		}
	}
	rhs := fc.compileI(x.RHS)
	icomb := intCombine(x.Op)
	fcomb := floatCombine(x.Op)
	return func(fr *frame) control {
		r := rhs(fr)
		a, off := at(fr)
		if a.Float {
			a.Flts[off] = fcomb(a.Flts[off], float64(r))
		} else {
			a.Ints[off] = icomb(a.Ints[off], r)
		}
		return ctlNext
	}
}

func intCombine(op string) func(a, b int64) int64 {
	switch op {
	case "+":
		return func(a, b int64) int64 { return a + b }
	case "-":
		return func(a, b int64) int64 { return a - b }
	case "*":
		return func(a, b int64) int64 { return a * b }
	case "/":
		return func(a, b int64) int64 {
			if b == 0 {
				throwf("interp: integer division by zero")
			}
			return a / b
		}
	case "%":
		return func(a, b int64) int64 {
			if b == 0 {
				throwf("interp: modulo by zero")
			}
			return a % b
		}
	}
	return func(int64, int64) int64 {
		throwf("interp: unsupported operator %q", op)
		return 0
	}
}

func floatCombine(op string) func(a, b float64) float64 {
	switch op {
	case "+":
		return func(a, b float64) float64 { return a + b }
	case "-":
		return func(a, b float64) float64 { return a - b }
	case "*":
		return func(a, b float64) float64 { return a * b }
	case "/":
		return func(a, b float64) float64 { return a / b }
	case "%":
		return func(a, b float64) float64 {
			bi := int64(b)
			if bi == 0 {
				throwf("interp: modulo by zero")
			}
			return float64(int64(a) % bi)
		}
	}
	return func(float64, float64) float64 {
		throwf("interp: unsupported operator %q", op)
		return 0
	}
}

// ---- loops ----

func (fc *fnCompiler) compileFor(loop *cminus.ForStmt) cstmt {
	body := fc.compileBlock(loop.Body)
	serial := fc.compileSerialFor(loop, body)
	lp := fc.planFor(loop)
	if lp == nil || !lp.Chosen {
		return serial
	}
	par := fc.compileParallelFor(loop, lp, body)
	checks := make([]bexpr, len(lp.Decision.RuntimeChecks))
	for i, chk := range lp.Decision.RuntimeChecks {
		checks[i] = fc.compileCheck(chk.String())
	}
	m := fc.c.m
	return func(fr *frame) control {
		if m.Workers > 1 {
			ok := true
			for _, chk := range checks {
				if !chk(fr) {
					ok = false
					break
				}
			}
			if ok {
				return par.run(fr)
			}
			m.Stats.RuntimeFallback++
		}
		return serial(fr)
	}
}

func (fc *fnCompiler) compileSerialFor(loop *cminus.ForStmt, body cstmt) cstmt {
	var init, post cstmt
	if loop.Init != nil {
		init = fc.compileStmt(loop.Init)
	}
	if loop.Post != nil {
		post = fc.compileStmt(loop.Post)
	}
	var cond bexpr
	if loop.Cond != nil {
		cond = fc.compileB(loop.Cond)
	}
	m := fc.c.m
	return func(fr *frame) control {
		if init != nil {
			if ctl := init(fr); ctl == ctlReturn {
				return ctl
			}
		}
		for {
			m.interruptCompiled()
			if cond != nil && !cond(fr) {
				return ctlNext
			}
			switch body(fr) {
			case ctlBreak:
				return ctlNext
			case ctlReturn:
				return ctlReturn
			}
			if post != nil {
				if ctl := post(fr); ctl == ctlReturn {
					return ctl
				}
			}
		}
	}
}

// compileCheck compiles one rendered runtime-check condition by reusing
// the mini-C expression parser, resolved against this function's slots.
func (fc *fnCompiler) compileCheck(cond string) bexpr {
	src := fmt.Sprintf("void __c(void) { int __r; __r = (%s); }", cond)
	prog, err := cminus.Parse(src)
	if err != nil {
		msg := fmt.Sprintf("interp: bad runtime check %q: %v", cond, err)
		return func(*frame) bool {
			panic(engineErr{fmt.Errorf("%s", msg)})
		}
	}
	as := prog.Funcs[0].Body.Stmts[1].(*cminus.AssignStmt)
	return fc.compileB(as.RHS)
}

// sortedReductions returns a chosen loop's reduction clauses in sorted
// name order (per-variable combines are independent, so any fixed order
// matches the tree walker's result exactly).
func sortedReductions(d map[string]string) [][2]string {
	names := make([]string, 0, len(d))
	for v := range d {
		names = append(names, v)
	}
	sort.Strings(names)
	out := make([][2]string, len(names))
	for i, v := range names {
		out[i] = [2]string{v, d[v]}
	}
	return out
}
