// Package interp is a tree-walking executor for the mini-C language. It
// runs programs serially or according to a parallelization plan: loops the
// plan marks parallel execute their iterations on a goroutine pool with
// privatized scalars, reduction combining, and run-time check fallback —
// exactly the semantics of the OpenMP annotations the parallelizer emits.
// The interpreter exists to validate plans: for every loop the analysis
// parallelizes, parallel execution must produce the same result as serial
// execution.
package interp

import (
	"fmt"
	"math"
)

// Value is a scalar value: either an integer or a double.
type Value struct {
	I     int64
	F     float64
	Float bool
}

// IntVal returns an integer value.
func IntVal(i int64) Value { return Value{I: i} }

// FloatVal returns a floating-point value.
func FloatVal(f float64) Value { return Value{F: f, Float: true} }

// AsFloat converts to float64.
func (v Value) AsFloat() float64 {
	if v.Float {
		return v.F
	}
	return float64(v.I)
}

// AsInt converts to int64 (truncating like a C cast).
func (v Value) AsInt() int64 {
	if v.Float {
		return int64(v.F)
	}
	return v.I
}

// Truthy implements C truthiness.
func (v Value) Truthy() bool {
	if v.Float {
		return v.F != 0
	}
	return v.I != 0
}

func (v Value) String() string {
	if v.Float {
		return fmt.Sprintf("%g", v.F)
	}
	return fmt.Sprintf("%d", v.I)
}

// Array is a flattened (possibly multi-dimensional) array of ints or
// doubles.
type Array struct {
	Name  string
	Dims  []int64
	Float bool
	Ints  []int64
	Flts  []float64
}

// NewIntArray allocates an integer array.
func NewIntArray(name string, dims ...int64) *Array {
	return &Array{Name: name, Dims: dims, Ints: make([]int64, total(dims))}
}

// NewFloatArray allocates a double array.
func NewFloatArray(name string, dims ...int64) *Array {
	return &Array{Name: name, Dims: dims, Float: true, Flts: make([]float64, total(dims))}
}

func total(dims []int64) int64 {
	n := int64(1)
	for _, d := range dims {
		n *= d
	}
	return n
}

// Len returns the flattened element count.
func (a *Array) Len() int64 { return total(a.Dims) }

// offset computes the flat offset for an index vector. Trailing dimensions
// may be omitted (partial indexing is an error here — the mini-C corpus
// always fully indexes).
func (a *Array) offset(idx []int64) (int64, error) {
	if len(idx) != len(a.Dims) {
		return 0, fmt.Errorf("interp: array %s indexed with %d subscripts, has %d dims", a.Name, len(idx), len(a.Dims))
	}
	var off int64
	for d, ix := range idx {
		if ix < 0 || ix >= a.Dims[d] {
			return 0, fmt.Errorf("interp: array %s index %d out of range [0,%d) in dim %d", a.Name, ix, a.Dims[d], d)
		}
		off = off*a.Dims[d] + ix
	}
	return off, nil
}

// Get reads an element.
func (a *Array) Get(idx []int64) (Value, error) {
	off, err := a.offset(idx)
	if err != nil {
		return Value{}, err
	}
	if a.Float {
		return FloatVal(a.Flts[off]), nil
	}
	return IntVal(a.Ints[off]), nil
}

// Set writes an element, converting the value to the array's type.
func (a *Array) Set(idx []int64, v Value) error {
	off, err := a.offset(idx)
	if err != nil {
		return err
	}
	if a.Float {
		a.Flts[off] = v.AsFloat()
	} else {
		a.Ints[off] = v.AsInt()
	}
	return nil
}

// Clone deep-copies the array (used by validation tests).
func (a *Array) Clone() *Array {
	cp := &Array{Name: a.Name, Dims: append([]int64(nil), a.Dims...), Float: a.Float}
	cp.Ints = append([]int64(nil), a.Ints...)
	cp.Flts = append([]float64(nil), a.Flts...)
	return cp
}

// MaxAbsDiff returns the largest elementwise absolute difference between
// two arrays of the same shape.
func MaxAbsDiff(a, b *Array) float64 {
	if a.Float != b.Float || a.Len() != b.Len() {
		return math.Inf(1)
	}
	var worst float64
	if a.Float {
		for i := range a.Flts {
			d := math.Abs(a.Flts[i] - b.Flts[i])
			if d > worst {
				worst = d
			}
		}
		return worst
	}
	for i := range a.Ints {
		d := math.Abs(float64(a.Ints[i] - b.Ints[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}
