package interp

import (
	"testing"

	"repro/internal/cminus"
)

func machineFor(t *testing.T, src, engine string) *Machine {
	t.Helper()
	prog, err := cminus.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := New(prog)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	m.Interp = engine
	return m
}

var engines = []string{"compiled", "vm", "tree"}

// TestArrayParamBindingScoped is the regression test for the array
// binding leak: array arguments used to be bound into the global
// m.Arrays under the parameter name and never removed, so repeated or
// nested calls with different arrays under the same parameter name
// silently aliased the stale binding.
func TestArrayParamBindingScoped(t *testing.T) {
	src := `
void fill(int buf[], int n, int v) {
	int i;
	for (i = 0; i < n; i++) { buf[i] = v; }
}
`
	for _, eng := range engines {
		t.Run(eng, func(t *testing.T) {
			m := machineFor(t, src, eng)
			a := NewIntArray("a", 4)
			b := NewIntArray("b", 4)
			if err := m.Call("fill", a, 4, 7); err != nil {
				t.Fatal(err)
			}
			if err := m.Call("fill", b, 4, 9); err != nil {
				t.Fatal(err)
			}
			if _, leaked := m.Arrays["buf"]; leaked {
				t.Fatalf("parameter binding %q leaked into m.Arrays", "buf")
			}
			for i := int64(0); i < 4; i++ {
				av, _ := a.Get([]int64{i})
				bv, _ := b.Get([]int64{i})
				if av.AsInt() != 7 || bv.AsInt() != 9 {
					t.Fatalf("i=%d: a=%d b=%d, want 7/9 (stale alias?)", i, av.AsInt(), bv.AsInt())
				}
			}
		})
	}
}

// TestNestedCallParamScoping: a callee's parameter shadowing a caller's
// array of the same name must not clobber the caller's binding after
// the callee returns.
func TestNestedCallParamScoping(t *testing.T) {
	src := `
void bump(int v[], int n) {
	int i;
	for (i = 0; i < n; i++) { v[i] = v[i] + 100; }
}
void driver(int v[], int w[], int n) {
	int i;
	bump(w, n);
	for (i = 0; i < n; i++) { v[i] = v[i] + 1; }
}
`
	for _, eng := range engines {
		t.Run(eng, func(t *testing.T) {
			m := machineFor(t, src, eng)
			v := NewIntArray("v", 3)
			w := NewIntArray("w", 3)
			if err := m.Call("driver", v, w, 3); err != nil {
				t.Fatal(err)
			}
			v0, _ := v.Get([]int64{0})
			w0, _ := w.Get([]int64{0})
			if v0.AsInt() != 1 {
				t.Fatalf("v[0] = %d, want 1 (callee param shadow leaked)", v0.AsInt())
			}
			if w0.AsInt() != 100 {
				t.Fatalf("w[0] = %d, want 100", w0.AsInt())
			}
		})
	}
}

// TestLocalArrayScoped: a local array declaration must not leak into
// m.Arrays after the call finishes.
func TestLocalArrayScoped(t *testing.T) {
	src := `
void f(int out[], int n) {
	int tmp[8];
	int i;
	for (i = 0; i < n; i++) { tmp[i] = i * i; }
	for (i = 0; i < n; i++) { out[i] = tmp[i]; }
}
`
	for _, eng := range engines {
		t.Run(eng, func(t *testing.T) {
			m := machineFor(t, src, eng)
			out := NewIntArray("out", 8)
			if err := m.Call("f", out, 8); err != nil {
				t.Fatal(err)
			}
			if _, leaked := m.Arrays["tmp"]; leaked {
				t.Fatal("local array declaration leaked into m.Arrays")
			}
			v, _ := out.Get([]int64{5})
			if v.AsInt() != 25 {
				t.Fatalf("out[5] = %d, want 25", v.AsInt())
			}
		})
	}
}

// TestEngineSelection: unknown engine names error; both real engines
// compute the same result; top-level return is a normal completion.
func TestEngineSelection(t *testing.T) {
	src := `
int g;
void f(int n) {
	g = n * 2;
	return;
	g = 0;
}
`
	for _, eng := range []string{"", "compiled", "tree"} {
		m := machineFor(t, src, eng)
		if err := m.Call("f", 21); err != nil {
			t.Fatalf("engine %q: %v", eng, err)
		}
		if got := m.Globals["g"].AsInt(); got != 42 {
			t.Fatalf("engine %q: g = %d, want 42", eng, got)
		}
	}
	m := machineFor(t, src, "llvm")
	if err := m.Call("f", 1); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestCompiledCallAllocations: after warm-up, a serial compiled call
// runs out of pooled frames and typed slots — per-call allocations stay
// at the small constant for argument boxing, independent of loop trip
// counts.
func TestCompiledCallAllocations(t *testing.T) {
	src := `
void kernel(int a[], int n) {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < n; i++) {
		acc = acc + a[i];
		a[i] = acc;
	}
}
`
	m := machineFor(t, src, "compiled")
	a := NewIntArray("a", 256)
	if err := m.Call("kernel", a, 256); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := m.Call("kernel", a, 256); err != nil {
			t.Fatal(err)
		}
	})
	// Arg boxing (interface conversions) costs a handful of allocations;
	// the 256-iteration loop body must cost none.
	if avg > 8 {
		t.Fatalf("compiled Call allocates %.1f allocs/run, want <= 8", avg)
	}
}

// TestCompiledRecursion: the two-phase compile registers the function
// shell before its body compiles, so self-recursion resolves.
func TestCompiledRecursion(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
void f(int out[]) {
	out[0] = fib(10);
}
`
	for _, eng := range engines {
		m := machineFor(t, src, eng)
		out := NewIntArray("out", 1)
		if err := m.Call("f", out); err != nil {
			t.Fatalf("engine %q: %v", eng, err)
		}
		v, _ := out.Get([]int64{0})
		if v.AsInt() != 55 {
			t.Fatalf("engine %q: fib(10) = %d, want 55", eng, v.AsInt())
		}
	}
}
