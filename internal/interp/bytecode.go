package interp

// The bytecode engine's compiler. It lowers each function to a flat
// []Instr over the same slot resolution the closure engine uses (the
// fnCompiler symbol tables), so scalar operands become indices into the
// frame's typed columns (ints / flts), array references become array-bank
// slots, and control flow becomes pc jumps. Expression temporaries live
// in registers appended after the named slots of the same columns, so a
// frame is one contiguous struct-of-arrays store and the dispatch loop
// (vm.go) touches no interface values and allocates nothing at steady
// state.
//
// Semantics mirror the closure engine instruction for instruction — same
// evaluation order, same error strings, same documented flat-slot
// relaxation versus the tree walker — so the corpus differential layer
// can pin all three engines bit-for-bit.

import (
	"fmt"
	"sync"

	"repro/internal/cminus"
	"repro/internal/parallelize"
)

// Opcode is one VM instruction kind.
type Opcode uint8

// Instruction set. Naming: I* operates on the int column, F* on the
// float column. A is the destination register unless noted; B and C are
// sources; Aux indexes a per-function table (strings, globals, builtins,
// calls, parallel descriptors); K is an inline int64 immediate and KF an
// inline float64 immediate.
const (
	opNop Opcode = iota

	// Constants, moves, conversions.
	opIConst // ints[A] = K
	opFConst // flts[A] = KF
	opIMove  // ints[A] = ints[B]
	opFMove  // flts[A] = flts[B]
	opI2F    // flts[A] = float64(ints[B])
	opF2I    // ints[A] = int64(flts[B])

	// Integer arithmetic.
	opIAdd     // ints[A] = ints[B] + ints[C]
	opIAddK    // ints[A] = ints[B] + K
	opIMulK    // ints[A] = ints[B] * K
	opIMulAdd  // ints[A] = ints[B]*ints[C] + ints[Aux]  (Aux is a register here)
	opIMulKAdd // ints[A] = ints[B]*K + ints[C]
	opISub     // ints[A] = ints[B] - ints[C]
	opIMul     // ints[A] = ints[B] * ints[C]
	opIDiv     // ints[A] = ints[B] / ints[C], zero-checked
	opIMod     // ints[A] = ints[B] % ints[C], zero-checked
	opIAnd     // ints[A] = ints[B] & ints[C]
	opIOr      // ints[A] = ints[B] | ints[C]
	opIXor     // ints[A] = ints[B] ^ ints[C]
	opIShl     // ints[A] = ints[B] << uint(ints[C])
	opIShr     // ints[A] = ints[B] >> uint(ints[C])
	opINeg     // ints[A] = -ints[B]
	opIBNot    // ints[A] = ^ints[B]

	// Float arithmetic.
	opFAdd    // flts[A] = flts[B] + flts[C]
	opFSub    // flts[A] = flts[B] - flts[C]
	opFMul    // flts[A] = flts[B] * flts[C]
	opFMulAcc // flts[A] += flts[B] * flts[C], product explicitly rounded (peephole)
	opFDiv    // flts[A] = flts[B] / flts[C]
	opFNeg    // flts[A] = -flts[B]

	// Comparisons materialized to 0/1 in the int column.
	opILt // ints[A] = b2i(ints[B] < ints[C])
	opILe
	opIGt
	opIGe
	opIEq
	opINe
	opFLt // ints[A] = b2i(flts[B] < flts[C])
	opFLe
	opFGt
	opFGe
	opFEq
	opFNe

	// Control flow. Jump targets are absolute pcs in A.
	opJump // pc = A
	opJNZ  // if (ints[B] != 0) != (K != 0) { pc = A }
	opJFNZ // if (flts[B] != 0) != (K != 0) { pc = A }
	opJILt // if (ints[B] < ints[C]) != (K != 0) { pc = A }  (fused compare+branch)
	opJILe
	opJIGt
	opJIGe
	opJIEq
	opJINe
	// Immediate compare+branch: the literal rides in K, so the branch
	// sense moves to C.
	opJIKLt // if (ints[B] < K) != (C != 0) { pc = A }
	opJIKLe
	opJIKGt
	opJIKGe
	opJIKEq
	opJIKNe
	// Post-increment compare+branch: the canonical for-loop back edge
	// i += d; if (i < bound) collapses into one dispatch. The delta rides
	// in Aux; the bound is a register (sense in K, like opJILt) or an
	// immediate (sense in C, like opJIKLt).
	opJIncLt // ints[B] += Aux; if (ints[B] < ints[C]) != (K != 0) { pc = A }
	opJIncLe
	opJIncGt
	opJIncGe
	opJIncEq
	opJIncNe
	opJIKIncLt // ints[B] += Aux; if (ints[B] < K) != (C != 0) { pc = A }
	opJIKIncLe
	opJIKIncGt
	opJIKIncGe
	opJIKIncEq
	opJIKIncNe
	// Compare+branch against a freshly loaded 1-D element (the right
	// operand of the compare): the array slot rides in bits 0-31 of K,
	// the branch sense in bit 32, and a small non-negative displacement
	// added to the index register in bits 40-63 (folds the a[i+1] shape).
	opJILtA // if (ints[B] < arrs[lo(K)][ints[C]+(K>>40)]) != (K>>32&1 != 0) { pc = A }
	opJILeA
	opJIGtA
	opJIGeA
	opJIEqA
	opJINeA

	// Globals (captured *Value cells) and frame cells.
	opGetGI // ints[A] = globals[Aux].I
	opGetGF // flts[A] = globals[Aux].F
	opSetGI // globals[Aux].I = ints[A]
	opSetGF // globals[Aux].F = flts[A]
	opGetCI // ints[A] = cells[B].I
	opGetCF // flts[A] = cells[B].F
	opSetCI // cells[B].I = ints[A]
	opSetCF // cells[B].F = flts[A]

	// Arrays. The fused 1-D forms check nil + rank + bounds and branch on
	// the array's dynamic element type, exactly like the closure engine.
	opALoad1I  // ints[A] = arrs[B][ints[C]]  (Aux: unknown-array msg)
	opALoad1F  // flts[A] = arrs[B][ints[C]]
	opAStore1I // arrs[B][ints[C]] = ints[A]
	opAStore1F // arrs[B][ints[C]] = flts[A]
	opAUpd1I   // arrs[B][ints[C]] = combine(K)(old, ints[A])
	opAUpd1F   // arrs[B][ints[C]] = combine(K)(old, flts[A])

	// Multi-dimensional addressing: opAIdx0 starts an offset in ints[A]
	// from the dim-0 subscript ints[C] (K = subscript count, rank check);
	// opAIdxN folds dim K's subscript in. The paired forms are peephole
	// fusions of two adjacent chain steps.
	opAIdx0   // ints[A] = bounds-checked ints[C]; rank must equal K
	opAIdxN   // ints[A] = ints[A]*Dims[K] + bounds-checked ints[C]
	opAIdx01  // dims 0 and 1 in one step: C = dim-0 reg, low K = dim-1 reg, high K = rank
	opAIdxNN  // dims K and K+1 in one step: C = dim-K reg, Aux = dim-K+1 reg
	opALoadI  // ints[A] = arrs[B].at(ints[C]) with dynamic type branch
	opALoadF  // flts[A] = arrs[B].at(ints[C])
	opAStoreI // arrs[B].at(ints[C]) = ints[A]
	opAStoreF // arrs[B].at(ints[C]) = flts[A]
	opAUpdI   // arrs[B].at(ints[C]) = combine(K)(old, ints[A])
	opAUpdF   // arrs[B].at(ints[C]) = combine(K)(old, flts[A])

	// Peephole-fused subscripted-subscript accesses. The Gath forms run
	// a full checked 1-D load of the inner subscript array (slot in the
	// high half of K, its unknown-array message index in the low half)
	// and feed the result straight into a checked 1-D access of arrs[B];
	// the outer nil check runs first, absorbing the nil-only probe. The
	// Off forms take an already-checked multi-dim offset in ints[C] into
	// the inner array arrs[K] instead.
	opGathLoadI  // ints[A] = arrs[B][arrs[K>>32][ints[C]]]
	opGathLoadF  // flts[A] = arrs[B][arrs[K>>32][ints[C]]]
	opGathStoreI // arrs[B][arrs[K>>32][ints[C]]] = ints[A]
	opGathStoreF // arrs[B][arrs[K>>32][ints[C]]] = flts[A]
	opOffLoadI   // ints[A] = arrs[B][arrs[K].at(ints[C])]
	opOffLoadF   // flts[A] = arrs[B][arrs[K].at(ints[C])]
	opOffStoreI  // arrs[B][arrs[K].at(ints[C])] = ints[A]
	opOffStoreF  // arrs[B][arrs[K].at(ints[C])] = flts[A]

	// Three-way cascades: a multiply-accumulate whose second factor is a
	// freshly loaded element. The load+mul+add chain collapses to one
	// dispatch; operand order is preserved so the float bits match the
	// unfused form exactly.
	opFMulAccL    // flts[A] += flts[B] * arrs[K][ints[C]]  (Aux: msg)
	opGathMulAccF // flts[A>>16] += flts[A&0xffff] * arrs[B][arrs[K>>32][ints[C]]]
	opIMulAddL    // ints[A] = arrs[K>>32][ints[C]] * ints[B] + ints[Aux]  (lo(K): msg)

	opANew   // arrs[A] = new array, dims from ints[B..B+K), Aux: name, C: 1 for float
	opACheck // nil-check arrs[B] (user-call array argument), Aux: msg

	// Builtins. Arguments and results use the float column.
	opAbs // ints[A] = int64(math.Abs(flts[B]))
	opB1  // flts[A] = builtins1 table[Aux](flts[B])
	opB2  // flts[A] = builtins2 table[Aux](flts[B], flts[C])

	opCallU // call calls[Aux]; result: ints[A] or flts[A] per descriptor

	// Returns and iteration-segment terminators.
	opRetV    // fr.ret = Value{}; ctlReturn
	opRetI    // fr.ret = IntVal(ints[A]); ctlReturn
	opRetF    // fr.ret = FloatVal(flts[A]); ctlReturn
	opIterEnd // end of a parallel-body segment: ctlNext
	opIterBrk // break with no enclosing loop in this segment: ctlBreak
	opIterCnt // continue with no enclosing loop in this segment: ctlContinue

	opEdge // loop back edge: cancellation poll (throttled shared counter)

	// Parallel regions.
	opJNoPar   // if m.Workers <= 1 { pc = A }
	opFall     // Stats.RuntimeFallback++
	opParEnter // Stats.ParallelRegions++
	opPar      // run parallel loop pars[Aux]; trip count in ints[B], control out in ints[A]
	opJIEqK    // if ints[B] == K { pc = A }  (opPar control dispatch)
	opIterRet  // propagate a worker/return control: ctlReturn

	opErr // panic engineErr with message strs[Aux]
)

// Instr is one flat instruction: an opcode plus dense operand fields.
// The slice of these is what the dispatch loop walks — no pointers, no
// closures, one cache line per couple of instructions.
type Instr struct {
	Op   Opcode
	A    int32
	B    int32
	C    int32
	Aux  int32
	K    int64
	KF   float64
	prev int32 // compile-time only: jump patch chain
}

// Combine kinds for opAUpd* (the K field).
const (
	cmbAdd int64 = iota
	cmbSub
	cmbMul
	cmbDiv
	cmbMod
)

func combineKind(op string) int64 {
	switch op {
	case "+":
		return cmbAdd
	case "-":
		return cmbSub
	case "*":
		return cmbMul
	case "/":
		return cmbDiv
	}
	return cmbMod
}

// vbind is one argument binding of a user call, applied caller→callee in
// parameter order at the opCallU site.
type vbind struct {
	kind uint8 // psInt / psFlt / psArr
	src  int32 // caller register (scalars) or array slot (psArr)
	dst  int32 // callee slot
}

// vcall is a user-call descriptor. callee is a shell registered before
// body emission, so recursion links up.
type vcall struct {
	callee   *bfunc
	binds    []vbind
	retFloat bool
}

// vparloop is a compiled parallel region: the body is a separately
// emitted segment of the same function's code, entered per iteration
// with the loop variable preset.
type vparloop struct {
	label    string
	ivarCell bool
	ivarSlot int32
	bodyPC   int32
	privs    []privSlot
	reds     []redSlot
}

// bfunc is one bytecode-compiled function.
type bfunc struct {
	name       string
	started    bool // compilation begun (breaks recursion cycles)
	code       []Instr
	nInts      int // named int slots + temp registers
	nFlts      int
	nCells     int
	nArrs      int
	params     []paramSlot
	entryArrs  []entryArr
	entryCells []entryCell

	strs    []string // error messages and array names
	globals []*Value
	b1      []func(float64) float64
	b2      []func(float64, float64) float64
	calls   []vcall
	pars    []vparloop

	pool sync.Pool
}

func (bf *bfunc) newFrame() *frame { return bf.pool.Get().(*frame) }

func (bf *bfunc) release(fr *frame) { bf.pool.Put(fr) }

// bindEntry mirrors cfunc.bindEntry for VM frames (including the
// scalar-column zeroing that keeps ill-formed read-before-assignment
// programs deterministic across engines).
func (bf *bfunc) bindEntry(fr *frame, m *Machine) {
	for i := range fr.ints {
		fr.ints[i] = 0
	}
	for i := range fr.flts {
		fr.flts[i] = 0
	}
	for i := range fr.arrs {
		fr.arrs[i] = nil
	}
	for _, ea := range bf.entryArrs {
		fr.arrs[ea.slot] = m.Arrays[ea.name]
	}
	for _, ec := range bf.entryCells {
		fr.cells[ec.slot] = ec.g
	}
}

// bytecodeProgram caches the bytecode form per plan (pointer-keyed, like
// compiledProgram).
type bytecodeProgram struct {
	plan  *parallelize.Plan
	funcs map[string]*bfunc
	c     *compiler
}

func compileBytecode(m *Machine) *bytecodeProgram {
	// Ride on the closure engine's resolution pass: a throwaway compiler
	// shell gives each bcCompiler a fully resolved fnCompiler without
	// building any closures.
	c := &compiler{m: m, funcs: map[string]*cfunc{}}
	bp := &bytecodeProgram{plan: m.Plan, funcs: map[string]*bfunc{}, c: c}
	// Register shells first so recursive and mutual calls resolve.
	for _, fn := range m.Prog.Funcs {
		if fn.Body != nil {
			bp.funcs[fn.Name] = &bfunc{name: fn.Name}
		}
	}
	for _, fn := range m.Prog.Funcs {
		if fn.Body != nil {
			bp.ensure(fn)
		}
	}
	return bp
}

// ensure compiles fn on first demand (call sites need the callee's
// parameter layout, so forward calls trigger compilation out of program
// order). A function currently being compiled — recursion — already has
// its parameter layout published, which is all a call site reads.
func (bp *bytecodeProgram) ensure(fn *cminus.FuncDecl) *bfunc {
	bf := bp.funcs[fn.Name]
	if bf == nil || bf.started {
		return bf
	}
	bf.started = true
	cf := newCfunc(fn)
	fc := &fnCompiler{
		c:       bp.c,
		fn:      fn,
		cf:      cf,
		scalars: map[string]*scalarSym{},
		arrays:  map[string]*arraySym{},
		fp:      bp.c.funcPlan(fn.Name),
	}
	fc.resolve()
	// Publish the parameter layout immediately: recursive call sites in
	// this very body bind against it.
	bf.params = cf.params
	bc := &bcCompiler{fc: fc, bf: bf, bp: bp}
	// Temp registers live above the named slots. Resolution fixed the
	// scalar counts; array slots can still grow during emission (lazy
	// entry arrays), so those are re-read after.
	bc.tI = int32(cf.nInts)
	bc.maxI = bc.tI
	bc.tF = int32(cf.nFlts)
	bc.maxF = bc.tF
	bc.block(fn.Body)
	bc.emit(Instr{Op: opRetV})
	bc.flushSegs()
	bc.patch()

	bf.code = bc.code
	bf.nInts = int(bc.maxI)
	bf.nFlts = int(bc.maxF)
	bf.nCells = cf.nCells
	bf.nArrs = cf.nArrs
	bf.entryArrs = cf.entryArrs
	bf.entryCells = cf.entryCells
	bf.pool.New = func() any {
		return &frame{
			ints:  make([]int64, bf.nInts),
			flts:  make([]float64, bf.nFlts),
			cells: make([]*Value, bf.nCells),
			arrs:  make([]*Array, bf.nArrs),
		}
	}
	return bf
}

// bcCompiler emits one function's instruction stream.
type bcCompiler struct {
	fc   *fnCompiler
	bf   *bfunc
	bp   *bytecodeProgram
	code []Instr

	// Temp-register watermarks: tI/tF are the next free registers, maxI/
	// maxF the high-water marks that size the frame columns.
	tI, maxI int32
	tF, maxF int32

	// labels[i] is the resolved pc (or -1) and heads[i] the patch chain
	// through Instr.prev of jumps targeting label i.
	labels []int32
	heads  []int32

	// barrier is the lowest instruction index the peephole pass may still
	// rewrite: every position a jump can land on (a bound label, a
	// parallel-segment entry) raises it, so fusion never merges across a
	// control-flow join.
	barrier int32

	// Loop context: jump labels for break/continue, or -1 at a segment
	// boundary (function top level or parallel-body segment), where
	// break/continue lower to opIterBrk/opIterCnt.
	breaks []int32
	conts  []int32

	// Parallel-body segments queued for emission after the main stream.
	segs []pendingSeg
}

type pendingSeg struct {
	body *cminus.Block
	pidx int
}

func (bc *bcCompiler) emit(in Instr) int32 {
	if i, ok := bc.fuse(in); ok {
		return i
	}
	bc.code = append(bc.code, in)
	return int32(len(bc.code) - 1)
}

// fuse is the emission-time peephole: when the incoming instruction
// consumes the value a just-emitted producer wrote to a dead temp
// register, the pair collapses into one superinstruction in place. Only
// temps qualify (named slots are observable), and nothing fuses across
// bc.barrier (a jump could land between the two). Patterns target the
// corpus hot loops: the subscripted-subscript access a2[a1[i]] itself
// (Gath/Off), float multiply-accumulate, and index arithmetic b*k+c.
func (bc *bcCompiler) fuse(in Instr) (int32, bool) {
	p := int32(len(bc.code)) - 1
	if p < bc.barrier {
		return 0, false
	}
	prev := &bc.code[p]
	nInts := int32(bc.fc.cf.nInts)
	switch in.Op {
	case opALoad1I, opALoad1F, opAStore1I, opAStore1F:
		if prev.Op == opALoad1I && prev.A == in.C && prev.A >= nInts {
			var op Opcode
			switch in.Op {
			case opALoad1I:
				op = opGathLoadI
			case opALoad1F:
				op = opGathLoadF
			case opAStore1I:
				op = opGathStoreI
			default:
				op = opGathStoreF
			}
			g := Instr{Op: op, A: in.A, B: in.B, C: prev.C, Aux: in.Aux,
				K: int64(prev.B)<<32 | int64(uint32(prev.Aux))}
			// The fused op re-checks outer-nil first, which is exactly
			// what the nil-only probe guarding the inner subscript did —
			// absorb an adjacent probe by writing the fused op into its
			// slot and popping the inner load (labels never point past
			// bc.barrier <= p-1, and neither slot is a jump).
			if p-1 >= bc.barrier {
				if pr := &bc.code[p-1]; pr.Op == opAIdx0 && pr.C == -1 && pr.B == in.B && pr.Aux == in.Aux {
					*pr = g
					bc.code = bc.code[:p]
					return p - 1, true
				}
			}
			*prev = g
			return p, true
		}
		if prev.Op == opALoadI && prev.A == in.C && prev.A >= nInts {
			var op Opcode
			switch in.Op {
			case opALoad1I:
				op = opOffLoadI
			case opALoad1F:
				op = opOffLoadF
			case opAStore1I:
				op = opOffStoreI
			default:
				op = opOffStoreF
			}
			*prev = Instr{Op: op, A: in.A, B: in.B, C: prev.C, Aux: in.Aux, K: int64(prev.B)}
			return p, true
		}
	case opFAdd:
		// Accumulate-into-self only: a+b and b+a differ in NaN payload
		// propagation, so the swapped form is not bit-safe to rewrite.
		if in.A == in.B && prev.Op == opFMul && prev.A == in.C && prev.A >= int32(bc.fc.cf.nFlts) {
			// Cascade: when the product's second factor was itself just
			// loaded into a dead temp, fold load+mul+add into one op. The
			// loaded value must be the C operand (order preserved) and must
			// not double as the B operand. Popping code[p] is safe: labels
			// never point past bc.barrier <= p-1, and code[p] is not a jump
			// so no patch chain references it.
			if p-1 >= bc.barrier && prev.B != prev.C && prev.C >= int32(bc.fc.cf.nFlts) {
				switch pr2 := &bc.code[p-1]; {
				case pr2.Op == opALoad1F && pr2.A == prev.C:
					*pr2 = Instr{Op: opFMulAccL, A: in.A, B: prev.B, C: pr2.C,
						Aux: pr2.Aux, K: int64(pr2.B)}
					bc.code = bc.code[:p]
					return p - 1, true
				case pr2.Op == opGathLoadF && pr2.A == prev.C &&
					in.A < 1<<15 && prev.B < 1<<15:
					*pr2 = Instr{Op: opGathMulAccF, A: in.A<<16 | prev.B, B: pr2.B,
						C: pr2.C, Aux: pr2.Aux, K: pr2.K}
					bc.code = bc.code[:p]
					return p - 1, true
				}
			}
			*prev = Instr{Op: opFMulAcc, A: in.A, B: prev.B, C: prev.C}
			return p, true
		}
	case opAIdxN:
		if prev.Op == opAIdx0 && prev.C >= 0 && prev.A == in.A && prev.B == in.B && in.K == 1 {
			*prev = Instr{Op: opAIdx01, A: prev.A, B: prev.B, C: prev.C, Aux: prev.Aux,
				K: prev.K<<32 | int64(uint32(in.C))}
			return p, true
		}
		if prev.Op == opAIdxN && prev.A == in.A && prev.B == in.B && in.K == prev.K+1 {
			*prev = Instr{Op: opAIdxNN, A: prev.A, B: prev.B, C: prev.C, Aux: in.C, K: prev.K}
			return p, true
		}
	case opJILt, opJILe, opJIGt, opJIGe, opJIEq, opJINe:
		// In-place add feeding the left operand: the for-loop back edge
		// i += d; if (i ? n). The add's write is preserved by the fused
		// op, so no dead-temp requirement — only that the incremented
		// slot is the compare's left operand.
		if prev.Op == opIAddK && prev.A == prev.B && prev.A == in.B &&
			prev.K >= -(1<<30) && prev.K < 1<<30 {
			*prev = Instr{Op: in.Op + (opJIncLt - opJILt), A: in.A, B: in.B, C: in.C,
				Aux: int32(prev.K), K: in.K, prev: in.prev}
			return p, true
		}
		// Compare-branch whose right operand was just loaded from a 1-D
		// array into a dead temp: re-load inside the branch op. The
		// rewritten slot becomes a jump, so it must carry the incoming
		// instruction's label (A) and patch chain (prev) verbatim.
		if prev.Op == opALoad1I && prev.A == in.C && prev.A >= nInts && prev.A != in.B {
			j := Instr{Op: in.Op + (opJILtA - opJILt), A: in.A, B: in.B, C: prev.C,
				Aux: prev.Aux, K: in.K<<32 | int64(uint32(prev.B)), prev: in.prev}
			// Cascade: the load's index was a dead temp base+literal (the
			// a[i+1] loop-bound shape) — fold the displacement into bits
			// 40-63 of K and pop the add.
			if p-1 >= bc.barrier && prev.C >= nInts && prev.C != in.B {
				if pr2 := &bc.code[p-1]; pr2.Op == opIAddK && pr2.A == prev.C &&
					pr2.B != pr2.A && pr2.K >= 0 && pr2.K < 1<<20 {
					j.C = pr2.B
					j.K |= pr2.K << 40
					*pr2 = j
					bc.code = bc.code[:p]
					return p - 1, true
				}
			}
			*prev = j
			return p, true
		}
	case opJIKLt, opJIKLe, opJIKGt, opJIKGe, opJIKEq, opJIKNe:
		// Same back-edge shape with an immediate bound.
		if prev.Op == opIAddK && prev.A == prev.B && prev.A == in.B &&
			prev.K >= -(1<<30) && prev.K < 1<<30 {
			*prev = Instr{Op: in.Op + (opJIKIncLt - opJIKLt), A: in.A, B: in.B, C: in.C,
				Aux: int32(prev.K), K: in.K, prev: in.prev}
			return p, true
		}
	case opIAdd:
		if (prev.Op == opIMul || prev.Op == opIMulK) && prev.A >= nInts &&
			(prev.A == in.B) != (prev.A == in.C) {
			other := in.C
			if prev.A == in.C {
				other = in.B
			}
			if prev.Op == opIMul {
				// Cascade: one multiply operand was just loaded from a 1-D
				// array into a dead temp (the a1[i]*k+t index shape) —
				// int multiply is exact and commutative, so the loaded
				// value may take either factor position.
				if p-1 >= bc.barrier {
					mo := prev.C
					if pr2 := &bc.code[p-1]; pr2.Op == opALoad1I && pr2.A >= nInts &&
						(pr2.A == prev.B) != (pr2.A == mo) && pr2.A != other {
						if pr2.A == prev.B {
							mo = prev.C
						} else {
							mo = prev.B
						}
						*pr2 = Instr{Op: opIMulAddL, A: in.A, B: mo, C: pr2.C, Aux: other,
							K: int64(pr2.B)<<32 | int64(uint32(pr2.Aux))}
						bc.code = bc.code[:p]
						return p - 1, true
					}
				}
				*prev = Instr{Op: opIMulAdd, A: in.A, B: prev.B, C: prev.C, Aux: other}
			} else {
				*prev = Instr{Op: opIMulKAdd, A: in.A, B: prev.B, C: other, K: prev.K}
			}
			return p, true
		}
	}
	return 0, false
}

func (bc *bcCompiler) here() int32 { return int32(len(bc.code)) }

func (bc *bcCompiler) newLabel() int32 {
	bc.labels = append(bc.labels, -1)
	bc.heads = append(bc.heads, -1)
	return int32(len(bc.labels) - 1)
}

func (bc *bcCompiler) bind(l int32) {
	bc.labels[l] = bc.here()
	bc.barrier = bc.here()
}

// jump emits a branching instruction whose target label is l; the pc is
// filled in by patch(). The label id rides in A until then.
func (bc *bcCompiler) jump(in Instr, l int32) {
	in.A = l
	in.prev = bc.heads[l]
	bc.heads[l] = bc.emit(in)
}

func (bc *bcCompiler) patch() {
	for l, head := range bc.heads {
		pc := bc.labels[l]
		for i := head; i >= 0; {
			next := bc.code[i].prev
			bc.code[i].A = pc
			bc.code[i].prev = 0
			i = next
		}
	}
}

// allocI grabs a fresh int temp register.
func (bc *bcCompiler) allocI() int32 {
	r := bc.tI
	bc.tI++
	if bc.tI > bc.maxI {
		bc.maxI = bc.tI
	}
	return r
}

func (bc *bcCompiler) allocF() int32 {
	r := bc.tF
	bc.tF++
	if bc.tF > bc.maxF {
		bc.maxF = bc.tF
	}
	return r
}

// save/restore bracket a statement or subexpression so its temps recycle.
func (bc *bcCompiler) save() (int32, int32) { return bc.tI, bc.tF }

func (bc *bcCompiler) restore(ti, tf int32) { bc.tI, bc.tF = ti, tf }

// str interns a string into the function's table.
func (bc *bcCompiler) str(s string) int32 {
	for i, have := range bc.bf.strs {
		if have == s {
			return int32(i)
		}
	}
	bc.bf.strs = append(bc.bf.strs, s)
	return int32(len(bc.bf.strs) - 1)
}

// global interns a *Value cell.
func (bc *bcCompiler) global(g *Value) int32 {
	for i, have := range bc.bf.globals {
		if have == g {
			return int32(i)
		}
	}
	bc.bf.globals = append(bc.bf.globals, g)
	return int32(len(bc.bf.globals) - 1)
}

// errOp emits an unconditional runtime error (the lazy compile-known
// failures the closure engine defers into throwing closures).
func (bc *bcCompiler) errOp(format string, args ...any) {
	bc.emit(Instr{Op: opErr, Aux: bc.str(fmt.Sprintf(format, args...))})
}

// ---- expression emission ----
//
// emitITo/emitFTo compile an expression so that dst is written exactly
// once, by the last instruction of every control path, with all operand
// reads preceding it. That invariant makes "emit straight into the
// target slot" safe for assignments even when the RHS reads the target.

// containsIncDec reports whether evaluating e can write a scalar slot
// (++/-- anywhere in the subtree). Used to decide when a named slot read
// must be copied to a temp before emitting the other operand.
func containsIncDec(e cminus.Expr) bool {
	found := false
	cminus.WalkExprs(e, func(x cminus.Expr) bool {
		if u, ok := x.(*cminus.UnaryExpr); ok && (u.Op == "++" || u.Op == "--") {
			found = true
		}
		return !found
	})
	return found
}

// freezeI copies r to a temp when r is a named int slot and the
// yet-to-be-emitted expression after can mutate scalar slots.
func (bc *bcCompiler) freezeI(r int32, after cminus.Expr) int32 {
	if r < int32(bc.fc.cf.nInts) && containsIncDec(after) {
		t := bc.allocI()
		bc.emit(Instr{Op: opIMove, A: t, B: r})
		return t
	}
	return r
}

func (bc *bcCompiler) freezeF(r int32, after cminus.Expr) int32 {
	if r < int32(bc.fc.cf.nFlts) && containsIncDec(after) {
		t := bc.allocF()
		bc.emit(Instr{Op: opFMove, A: t, B: r})
		return t
	}
	return r
}

// emitI compiles a statically-int expression and returns the register
// holding its value — the named slot itself for simple local reads.
func (bc *bcCompiler) emitI(e cminus.Expr) int32 {
	if id, ok := e.(*cminus.Ident); ok {
		if s := bc.fc.resolveScalar(id.Name); s.kind == syLocalInt {
			return int32(s.idx)
		}
	}
	dst := bc.allocI()
	bc.emitITo(e, dst)
	return dst
}

func (bc *bcCompiler) emitF(e cminus.Expr) int32 {
	if id, ok := e.(*cminus.Ident); ok {
		if s := bc.fc.resolveScalar(id.Name); s.kind == syLocalFlt {
			return int32(s.idx)
		}
	}
	dst := bc.allocF()
	bc.emitFTo(e, dst)
	return dst
}

// asIReg compiles e as int like fnCompiler.asI (truncating floats).
func (bc *bcCompiler) asIReg(e cminus.Expr) int32 {
	if bc.fc.typeOf(e) == tInt {
		return bc.emitI(e)
	}
	f := bc.emitF(e)
	t := bc.allocI()
	bc.emit(Instr{Op: opF2I, A: t, B: f})
	return t
}

func (bc *bcCompiler) asFReg(e cminus.Expr) int32 {
	if bc.fc.typeOf(e) == tFloat {
		return bc.emitF(e)
	}
	i := bc.emitI(e)
	t := bc.allocF()
	bc.emit(Instr{Op: opI2F, A: t, B: i})
	return t
}

func (bc *bcCompiler) asITo(e cminus.Expr, dst int32) {
	if bc.fc.typeOf(e) == tInt {
		bc.emitITo(e, dst)
		return
	}
	f := bc.emitF(e)
	bc.emit(Instr{Op: opF2I, A: dst, B: f})
}

func (bc *bcCompiler) asFTo(e cminus.Expr, dst int32) {
	if bc.fc.typeOf(e) == tFloat {
		bc.emitFTo(e, dst)
		return
	}
	i := bc.emitI(e)
	bc.emit(Instr{Op: opI2F, A: dst, B: i})
}

func (bc *bcCompiler) emitITo(e cminus.Expr, dst int32) {
	switch x := e.(type) {
	case *cminus.IntLit:
		bc.emit(Instr{Op: opIConst, A: dst, K: x.Val})
	case *cminus.StringLit:
		bc.emit(Instr{Op: opIConst, A: dst})
	case *cminus.Ident:
		bc.scalarReadITo(x, dst)
	case *cminus.BinaryExpr:
		bc.emitBinITo(x, dst)
	case *cminus.UnaryExpr:
		switch x.Op {
		case "-":
			v := bc.emitI(x.X)
			bc.emit(Instr{Op: opINeg, A: dst, B: v})
		case "!":
			bc.emitBoolTo(x, dst)
		case "~":
			v := bc.asIReg(x.X)
			bc.emit(Instr{Op: opIBNot, A: dst, B: v})
		case "++", "--":
			bc.emitIncDecITo(x, dst)
		default:
			bc.errOp("interp: unary %q at %s", x.Op, x.P)
		}
	case *cminus.CondExpr:
		lf, lend := bc.newLabel(), bc.newLabel()
		ti, tf := bc.save()
		bc.emitBranch(x.C, lf, false)
		bc.restore(ti, tf)
		bc.emitITo(x.T, dst)
		bc.jump(Instr{Op: opJump}, lend)
		bc.bind(lf)
		bc.restore(ti, tf)
		bc.emitITo(x.F, dst)
		bc.bind(lend)
	case *cminus.IndexExpr:
		bc.arrayReadTo(x, dst, false)
	case *cminus.CallExpr:
		bc.emitCallTo(x, tInt, dst)
	case *cminus.CastExpr:
		bc.asITo(x.X, dst)
	default:
		bc.errOp("interp: unsupported expression %T at %s", e, e.Pos())
	}
}

func (bc *bcCompiler) emitFTo(e cminus.Expr, dst int32) {
	switch x := e.(type) {
	case *cminus.FloatLit:
		var v float64
		if _, err := fmt.Sscanf(x.Text, "%g", &v); err != nil {
			bc.errOp("interp: bad float %q", x.Text)
			return
		}
		bc.emit(Instr{Op: opFConst, A: dst, KF: v})
		return
	case *cminus.Ident:
		bc.scalarReadFTo(x, dst)
		return
	case *cminus.BinaryExpr:
		var op Opcode
		switch x.Op {
		case "+":
			op = opFAdd
		case "-":
			op = opFSub
		case "*":
			op = opFMul
		case "/":
			op = opFDiv
		}
		if op != opNop {
			l := bc.freezeF(bc.asFReg(x.X), x.Y)
			r := bc.asFReg(x.Y)
			bc.emit(Instr{Op: op, A: dst, B: l, C: r})
			return
		}
	case *cminus.UnaryExpr:
		switch x.Op {
		case "-":
			v := bc.emitF(x.X)
			bc.emit(Instr{Op: opFNeg, A: dst, B: v})
			return
		case "++", "--":
			bc.emitIncDecFTo(x, dst)
			return
		}
	case *cminus.CondExpr:
		lf, lend := bc.newLabel(), bc.newLabel()
		ti, tf := bc.save()
		bc.emitBranch(x.C, lf, false)
		bc.restore(ti, tf)
		bc.asFTo(x.T, dst)
		bc.jump(Instr{Op: opJump}, lend)
		bc.bind(lf)
		bc.restore(ti, tf)
		bc.asFTo(x.F, dst)
		bc.bind(lend)
		return
	case *cminus.IndexExpr:
		bc.arrayReadTo(x, dst, true)
		return
	case *cminus.CallExpr:
		bc.emitCallTo(x, tFloat, dst)
		return
	case *cminus.CastExpr:
		bc.asFTo(x.X, dst)
		return
	}
	// A statically-int expression requested in float context.
	i := bc.emitI(e)
	bc.emit(Instr{Op: opI2F, A: dst, B: i})
}

// emitBinITo compiles an int-context binary expression.
func (bc *bcCompiler) emitBinITo(x *cminus.BinaryExpr, dst int32) {
	switch x.Op {
	case "+", "-", "*", "/":
		// Statically int on both sides (int context + promotion).
		if x.Op == "+" || x.Op == "-" {
			if lit, ok := x.Y.(*cminus.IntLit); ok {
				k := lit.Val
				if x.Op == "-" {
					k = -k
				}
				l := bc.emitI(x.X)
				bc.emit(Instr{Op: opIAddK, A: dst, B: l, K: k})
				return
			}
		}
		// A literal operand folds into an immediate form; evaluating the
		// literal out of source order is unobservable.
		if x.Op == "+" {
			if lit, ok := x.X.(*cminus.IntLit); ok {
				r := bc.emitI(x.Y)
				bc.emit(Instr{Op: opIAddK, A: dst, B: r, K: lit.Val})
				return
			}
		}
		if x.Op == "*" {
			if lit, ok := x.Y.(*cminus.IntLit); ok {
				l := bc.emitI(x.X)
				bc.emit(Instr{Op: opIMulK, A: dst, B: l, K: lit.Val})
				return
			}
			if lit, ok := x.X.(*cminus.IntLit); ok {
				r := bc.emitI(x.Y)
				bc.emit(Instr{Op: opIMulK, A: dst, B: r, K: lit.Val})
				return
			}
		}
		var op Opcode
		switch x.Op {
		case "+":
			op = opIAdd
		case "-":
			op = opISub
		case "*":
			op = opIMul
		default:
			op = opIDiv
		}
		l := bc.freezeI(bc.emitI(x.X), x.Y)
		r := bc.emitI(x.Y)
		bc.emit(Instr{Op: op, A: dst, B: l, C: r})
	case "%":
		l := bc.freezeI(bc.asIReg(x.X), x.Y)
		r := bc.asIReg(x.Y)
		bc.emit(Instr{Op: opIMod, A: dst, B: l, C: r})
	case "<", "<=", ">", ">=", "==", "!=":
		bc.emitCmpTo(x, dst)
	case "&&", "||":
		bc.emitBoolTo(x, dst)
	case "&", "|", "^", "<<", ">>":
		var op Opcode
		switch x.Op {
		case "&":
			op = opIAnd
		case "|":
			op = opIOr
		case "^":
			op = opIXor
		case "<<":
			op = opIShl
		default:
			op = opIShr
		}
		l := bc.freezeI(bc.asIReg(x.X), x.Y)
		r := bc.asIReg(x.Y)
		bc.emit(Instr{Op: op, A: dst, B: l, C: r})
	default:
		bc.errOp("interp: unsupported operator %q at %s", x.Op, x.P)
	}
}

// emitCmpTo materializes a comparison as 0/1 via the dedicated compare
// opcodes (no branches in value context).
func (bc *bcCompiler) emitCmpTo(x *cminus.BinaryExpr, dst int32) {
	if promoteTyp(bc.fc.typeOf(x.X), bc.fc.typeOf(x.Y)) == tFloat {
		l := bc.freezeF(bc.asFReg(x.X), x.Y)
		r := bc.asFReg(x.Y)
		var op Opcode
		switch x.Op {
		case "<":
			op = opFLt
		case "<=":
			op = opFLe
		case ">":
			op = opFGt
		case ">=":
			op = opFGe
		case "==":
			op = opFEq
		default:
			op = opFNe
		}
		bc.emit(Instr{Op: op, A: dst, B: l, C: r})
		return
	}
	l := bc.freezeI(bc.asIReg(x.X), x.Y)
	r := bc.asIReg(x.Y)
	var op Opcode
	switch x.Op {
	case "<":
		op = opILt
	case "<=":
		op = opILe
	case ">":
		op = opIGt
	case ">=":
		op = opIGe
	case "==":
		op = opIEq
	default:
		op = opINe
	}
	bc.emit(Instr{Op: op, A: dst, B: l, C: r})
}

// emitBoolTo materializes a boolean-context expression (&&, ||, !) as
// 0/1 using branch emission, preserving short-circuit evaluation.
func (bc *bcCompiler) emitBoolTo(e cminus.Expr, dst int32) {
	lf, lend := bc.newLabel(), bc.newLabel()
	bc.emitBranch(e, lf, false)
	bc.emit(Instr{Op: opIConst, A: dst, K: 1})
	bc.jump(Instr{Op: opJump}, lend)
	bc.bind(lf)
	bc.emit(Instr{Op: opIConst, A: dst})
	bc.bind(lend)
}

// emitBranch emits a conditional jump to target when e's truthiness
// equals jumpIfTrue, short-circuiting && and || and fusing integer
// comparisons into compare-branch instructions.
func (bc *bcCompiler) emitBranch(e cminus.Expr, target int32, jumpIfTrue bool) {
	switch x := e.(type) {
	case *cminus.BinaryExpr:
		switch x.Op {
		case "&&":
			if jumpIfTrue {
				l := bc.newLabel()
				bc.emitBranch(x.X, l, false)
				bc.emitBranch(x.Y, target, true)
				bc.bind(l)
			} else {
				bc.emitBranch(x.X, target, false)
				bc.emitBranch(x.Y, target, false)
			}
			return
		case "||":
			if jumpIfTrue {
				bc.emitBranch(x.X, target, true)
				bc.emitBranch(x.Y, target, true)
			} else {
				l := bc.newLabel()
				bc.emitBranch(x.X, l, true)
				bc.emitBranch(x.Y, target, false)
				bc.bind(l)
			}
			return
		case "<", "<=", ">", ">=", "==", "!=":
			if promoteTyp(bc.fc.typeOf(x.X), bc.fc.typeOf(x.Y)) == tFloat {
				// Float comparisons materialize (NaN makes negated
				// compare-branches unsound), then branch on the bit.
				t := bc.allocI()
				bc.emitCmpTo(x, t)
				bc.jump(Instr{Op: opJNZ, B: t, K: b2i(!jumpIfTrue)}, target)
				return
			}
			l := bc.freezeI(bc.asIReg(x.X), x.Y)
			if lit, ok := x.Y.(*cminus.IntLit); ok {
				var op Opcode
				switch x.Op {
				case "<":
					op = opJIKLt
				case "<=":
					op = opJIKLe
				case ">":
					op = opJIKGt
				case ">=":
					op = opJIKGe
				case "==":
					op = opJIKEq
				default:
					op = opJIKNe
				}
				bc.jump(Instr{Op: op, B: l, C: int32(b2i(!jumpIfTrue)), K: lit.Val}, target)
				return
			}
			r := bc.asIReg(x.Y)
			var op Opcode
			switch x.Op {
			case "<":
				op = opJILt
			case "<=":
				op = opJILe
			case ">":
				op = opJIGt
			case ">=":
				op = opJIGe
			case "==":
				op = opJIEq
			default:
				op = opJINe
			}
			bc.jump(Instr{Op: op, B: l, C: r, K: b2i(!jumpIfTrue)}, target)
			return
		}
	case *cminus.UnaryExpr:
		if x.Op == "!" {
			bc.emitBranch(x.X, target, !jumpIfTrue)
			return
		}
	}
	if bc.fc.typeOf(e) == tFloat {
		r := bc.emitF(e)
		bc.jump(Instr{Op: opJFNZ, B: r, K: b2i(!jumpIfTrue)}, target)
		return
	}
	r := bc.emitI(e)
	bc.jump(Instr{Op: opJNZ, B: r, K: b2i(!jumpIfTrue)}, target)
}

// ---- scalar access ----

func (bc *bcCompiler) scalarReadITo(id *cminus.Ident, dst int32) {
	s := bc.fc.resolveScalar(id.Name)
	switch s.kind {
	case syLocalInt:
		bc.emit(Instr{Op: opIMove, A: dst, B: int32(s.idx)})
	case syLocalFlt:
		bc.emit(Instr{Op: opF2I, A: dst, B: int32(s.idx)})
	case syGlobal:
		if s.float {
			t := bc.allocF()
			bc.emit(Instr{Op: opGetGF, A: t, Aux: bc.global(s.g)})
			bc.emit(Instr{Op: opF2I, A: dst, B: t})
		} else {
			bc.emit(Instr{Op: opGetGI, A: dst, Aux: bc.global(s.g)})
		}
	case syCell:
		if s.float {
			t := bc.allocF()
			bc.emit(Instr{Op: opGetCF, A: t, B: int32(s.idx)})
			bc.emit(Instr{Op: opF2I, A: dst, B: t})
		} else {
			bc.emit(Instr{Op: opGetCI, A: dst, B: int32(s.idx)})
		}
	default:
		bc.errOp("interp: unbound variable %q at %s", id.Name, id.P)
	}
}

func (bc *bcCompiler) scalarReadFTo(id *cminus.Ident, dst int32) {
	s := bc.fc.resolveScalar(id.Name)
	switch s.kind {
	case syLocalFlt:
		bc.emit(Instr{Op: opFMove, A: dst, B: int32(s.idx)})
	case syLocalInt:
		bc.emit(Instr{Op: opI2F, A: dst, B: int32(s.idx)})
	case syGlobal:
		if s.float {
			bc.emit(Instr{Op: opGetGF, A: dst, Aux: bc.global(s.g)})
		} else {
			t := bc.allocI()
			bc.emit(Instr{Op: opGetGI, A: t, Aux: bc.global(s.g)})
			bc.emit(Instr{Op: opI2F, A: dst, B: t})
		}
	case syCell:
		if s.float {
			bc.emit(Instr{Op: opGetCF, A: dst, B: int32(s.idx)})
		} else {
			t := bc.allocI()
			bc.emit(Instr{Op: opGetCI, A: t, B: int32(s.idx)})
			bc.emit(Instr{Op: opI2F, A: dst, B: t})
		}
	default:
		bc.errOp("interp: unbound variable %q at %s", id.Name, id.P)
	}
}

// scalarStore compiles "s = rhs" with the RHS at the target's type,
// matching fnCompiler.scalarStore (including ignoring the RHS entirely
// for unbound targets).
func (bc *bcCompiler) scalarStore(s *scalarSym, rhs cminus.Expr) {
	switch s.kind {
	case syLocalInt:
		bc.asITo(rhs, int32(s.idx))
	case syLocalFlt:
		bc.asFTo(rhs, int32(s.idx))
	case syGlobal:
		if s.g.Float {
			t := bc.allocF()
			bc.asFTo(rhs, t)
			bc.emit(Instr{Op: opSetGF, A: t, Aux: bc.global(s.g)})
		} else {
			t := bc.allocI()
			bc.asITo(rhs, t)
			bc.emit(Instr{Op: opSetGI, A: t, Aux: bc.global(s.g)})
		}
	case syCell:
		if s.float {
			t := bc.allocF()
			bc.asFTo(rhs, t)
			bc.emit(Instr{Op: opSetCF, A: t, B: int32(s.idx)})
		} else {
			t := bc.allocI()
			bc.asITo(rhs, t)
			bc.emit(Instr{Op: opSetCI, A: t, B: int32(s.idx)})
		}
	default:
		bc.errOp("interp: unbound variable %q", s.name)
	}
}

// scalarRefI mirrors fnCompiler.scalarRefI: raw int load/store emitters
// for compound assignment and ++/--. ok is false for kinds refI rejects
// (float locals, unbound), which throw at runtime.
func (bc *bcCompiler) refLoadI(s *scalarSym, dst int32) bool {
	switch s.kind {
	case syLocalInt:
		bc.emit(Instr{Op: opIMove, A: dst, B: int32(s.idx)})
	case syGlobal:
		bc.emit(Instr{Op: opGetGI, A: dst, Aux: bc.global(s.g)})
	case syCell:
		bc.emit(Instr{Op: opGetCI, A: dst, B: int32(s.idx)})
	default:
		return false
	}
	return true
}

func (bc *bcCompiler) refStoreI(s *scalarSym, src int32) {
	switch s.kind {
	case syLocalInt:
		bc.emit(Instr{Op: opIMove, A: int32(s.idx), B: src})
	case syGlobal:
		bc.emit(Instr{Op: opSetGI, A: src, Aux: bc.global(s.g)})
	case syCell:
		bc.emit(Instr{Op: opSetCI, A: src, B: int32(s.idx)})
	}
}

func (bc *bcCompiler) refLoadF(s *scalarSym, dst int32) bool {
	switch s.kind {
	case syLocalFlt:
		bc.emit(Instr{Op: opFMove, A: dst, B: int32(s.idx)})
	case syGlobal:
		bc.emit(Instr{Op: opGetGF, A: dst, Aux: bc.global(s.g)})
	case syCell:
		bc.emit(Instr{Op: opGetCF, A: dst, B: int32(s.idx)})
	default:
		return false
	}
	return true
}

func (bc *bcCompiler) refStoreF(s *scalarSym, src int32) {
	switch s.kind {
	case syLocalFlt:
		bc.emit(Instr{Op: opFMove, A: int32(s.idx), B: src})
	case syGlobal:
		bc.emit(Instr{Op: opSetGF, A: src, Aux: bc.global(s.g)})
	case syCell:
		bc.emit(Instr{Op: opSetCF, A: src, B: int32(s.idx)})
	}
}

func (bc *bcCompiler) emitIncDecITo(x *cminus.UnaryExpr, dst int32) {
	id, ok := x.X.(*cminus.Ident)
	if !ok {
		bc.errOp("interp: %s on non-identifier at %s", x.Op, x.P)
		return
	}
	s := bc.fc.resolveScalar(id.Name)
	delta := int64(1)
	if x.Op == "--" {
		delta = -1
	}
	// Fast path: local int slot, updated in place.
	if s.kind == syLocalInt {
		slot := int32(s.idx)
		if x.Postfix {
			t := bc.allocI()
			bc.emit(Instr{Op: opIMove, A: t, B: slot})
			bc.emit(Instr{Op: opIAddK, A: slot, B: slot, K: delta})
			bc.emit(Instr{Op: opIMove, A: dst, B: t})
		} else {
			bc.emit(Instr{Op: opIAddK, A: slot, B: slot, K: delta})
			bc.emit(Instr{Op: opIMove, A: dst, B: slot})
		}
		return
	}
	old := bc.allocI()
	if !bc.refLoadI(s, old) {
		bc.errOp("interp: unbound %q at %s", id.Name, x.P)
		return
	}
	nv := bc.allocI()
	bc.emit(Instr{Op: opIAddK, A: nv, B: old, K: delta})
	bc.refStoreI(s, nv)
	if x.Postfix {
		bc.emit(Instr{Op: opIMove, A: dst, B: old})
	} else {
		bc.emit(Instr{Op: opIMove, A: dst, B: nv})
	}
}

func (bc *bcCompiler) emitIncDecFTo(x *cminus.UnaryExpr, dst int32) {
	id, ok := x.X.(*cminus.Ident)
	if !ok {
		bc.errOp("interp: %s on non-identifier at %s", x.Op, x.P)
		return
	}
	s := bc.fc.resolveScalar(id.Name)
	delta := float64(1)
	if x.Op == "--" {
		delta = -1
	}
	old := bc.allocF()
	if !bc.refLoadF(s, old) {
		bc.errOp("interp: unbound %q at %s", id.Name, x.P)
		return
	}
	d := bc.allocF()
	bc.emit(Instr{Op: opFConst, A: d, KF: delta})
	nv := bc.allocF()
	bc.emit(Instr{Op: opFAdd, A: nv, B: old, C: d})
	bc.refStoreF(s, nv)
	if x.Postfix {
		bc.emit(Instr{Op: opFMove, A: dst, B: old})
	} else {
		bc.emit(Instr{Op: opFMove, A: dst, B: nv})
	}
}

// ---- array access ----

// pureExpr reports whether evaluating e can neither throw nor write any
// state, making its evaluation order unobservable. Used to elide the
// standalone nil/rank pre-check (opARank ordering) before subscripts.
func (bc *bcCompiler) pureExpr(e cminus.Expr) bool {
	switch x := e.(type) {
	case *cminus.IntLit, *cminus.StringLit:
		return true
	case *cminus.FloatLit:
		var v float64
		_, err := fmt.Sscanf(x.Text, "%g", &v)
		return err == nil // a malformed literal throws "bad float"
	case *cminus.Ident:
		return bc.fc.resolveScalar(x.Name).kind != syUnbound
	case *cminus.BinaryExpr:
		switch x.Op {
		case "/", "%":
			return false // division by zero throws
		}
		return bc.pureExpr(x.X) && bc.pureExpr(x.Y)
	case *cminus.UnaryExpr:
		switch x.Op {
		case "-", "!", "~":
			return bc.pureExpr(x.X)
		}
		return false // ++/-- mutate; unknown operators throw
	case *cminus.CondExpr:
		return bc.pureExpr(x.C) && bc.pureExpr(x.T) && bc.pureExpr(x.F)
	case *cminus.CastExpr:
		return bc.pureExpr(x.X)
	}
	return false // index (bounds), call (anything)
}

// arraySlotFor resolves (lazily binding) the array symbol like arrayAt.
func (bc *bcCompiler) arraySlotFor(name string) *arraySym {
	sym := bc.fc.arrays[name]
	if sym == nil {
		sym = bc.fc.newArraySlot(name, false, false)
		bc.fc.cf.entryArrs = append(bc.fc.cf.entryArrs, entryArr{slot: sym.slot, name: name})
	}
	return sym
}

// arrayAddr emits the addressing code of an IndexExpr and returns the
// array slot, whether the fused 1-D forms apply, and the register
// holding the index (1-D) or flattened offset (multi-dim). ok=false
// means an unsupported index shape whose error was already emitted.
//
// Evaluation-order contract (mirroring fnCompiler.arrayAt): the closure
// engine checks nil + rank before evaluating any subscript. When a
// subscript can itself throw, a standalone opARank-equivalent ordering
// is preserved by emitting the nil+rank-checking opAIdx0 path; for pure
// subscripts the order is unobservable and the fused forms check
// everything themselves.
func (bc *bcCompiler) arrayAddr(e *cminus.IndexExpr, pos cminus.Position) (slot int32, one bool, idx int32, aux int32, ok bool) {
	name, idxExprs, shapeOK := cminus.ArrayBase(e)
	if !shapeOK {
		bc.errOp("interp: unsupported index expression at %s", e.P)
		return 0, false, 0, 0, false
	}
	sym := bc.arraySlotFor(name)
	slot = int32(sym.slot)
	aux = bc.str(fmt.Sprintf("interp: unknown array %q at %s", name, pos))
	if len(idxExprs) == 1 {
		if !bc.pureExpr(idxExprs[0]) {
			// Preserve the "unknown array" error before subscript
			// evaluation effects via a nil-only probe; rank and bounds
			// check at the consuming fused op, after the subscript.
			bc.emit(Instr{Op: opAIdx0, A: bc.allocI(), B: slot, C: -1, K: 1, Aux: aux})
		}
		ix := bc.asIReg(idxExprs[0])
		return slot, true, ix, aux, true
	}
	rank := int64(len(idxExprs))
	off := bc.allocI()
	impure := false
	for _, ie := range idxExprs {
		if !bc.pureExpr(ie) {
			impure = true
			break
		}
	}
	if impure {
		// Tree-walker order: the unknown-array check precedes subscript
		// evaluation; rank and bounds checks follow all of it (the
		// opAIdx0/opAIdxN chain emitted after the subscripts below).
		bc.emit(Instr{Op: opAIdx0, A: off, B: slot, C: -1, K: rank, Aux: aux})
	}
	regs := make([]int32, len(idxExprs))
	for d, ie := range idxExprs {
		r := bc.asIReg(ie)
		// The register is consumed only after every subscript evaluated:
		// copy named slots a later subscript may mutate.
		for _, later := range idxExprs[d+1:] {
			r = bc.freezeI(r, later)
		}
		regs[d] = r
	}
	bc.emit(Instr{Op: opAIdx0, A: off, B: slot, C: regs[0], K: rank, Aux: aux})
	for d := 1; d < len(idxExprs); d++ {
		bc.emit(Instr{Op: opAIdxN, A: off, B: slot, C: regs[d], K: int64(d)})
	}
	return slot, false, off, aux, true
}

func (bc *bcCompiler) arrayReadTo(e *cminus.IndexExpr, dst int32, wantFloat bool) {
	slot, one, idx, aux, ok := bc.arrayAddr(e, e.P)
	if !ok {
		return
	}
	op := opALoadI
	switch {
	case one && wantFloat:
		op = opALoad1F
	case one:
		op = opALoad1I
	case wantFloat:
		op = opALoadF
	}
	bc.emit(Instr{Op: op, A: dst, B: slot, C: idx, Aux: aux})
}

// ---- calls ----

func (bc *bcCompiler) emitCallTo(x *cminus.CallExpr, want ctyp, dst int32) {
	if fn := bc.fc.c.m.Prog.Func(x.Fun); fn != nil && fn.Body != nil {
		bc.emitUserCallTo(x, fn, want, dst)
		return
	}
	// Builtins: every argument evaluates as float, in order; arity
	// errors fire after argument evaluation, keeping dead calls inert.
	args := make([]int32, len(x.Args))
	for i, a := range x.Args {
		t := bc.allocF()
		bc.asFTo(a, t)
		args[i] = t
	}
	switch {
	case x.Fun == "abs":
		if len(args) != 1 {
			bc.errOp("interp: %s expects %d args", x.Fun, 1)
			return
		}
		if want == tInt {
			bc.emit(Instr{Op: opAbs, A: dst, B: args[0]})
			return
		}
		t := bc.allocI()
		bc.emit(Instr{Op: opAbs, A: t, B: args[0]})
		bc.emit(Instr{Op: opI2F, A: dst, B: t})
	case builtins1[x.Fun] != nil:
		if len(args) != 1 {
			bc.errOp("interp: %s expects %d args", x.Fun, 1)
			return
		}
		bc.bf.b1 = append(bc.bf.b1, builtins1[x.Fun])
		bi := int32(len(bc.bf.b1) - 1)
		if want == tInt {
			t := bc.allocF()
			bc.emit(Instr{Op: opB1, A: t, B: args[0], Aux: bi})
			bc.emit(Instr{Op: opF2I, A: dst, B: t})
			return
		}
		bc.emit(Instr{Op: opB1, A: dst, B: args[0], Aux: bi})
	case builtins2[x.Fun] != nil:
		if len(args) != 2 {
			bc.errOp("interp: %s expects %d args", x.Fun, 2)
			return
		}
		bc.bf.b2 = append(bc.bf.b2, builtins2[x.Fun])
		bi := int32(len(bc.bf.b2) - 1)
		if want == tInt {
			t := bc.allocF()
			bc.emit(Instr{Op: opB2, A: t, B: args[0], C: args[1], Aux: bi})
			bc.emit(Instr{Op: opF2I, A: dst, B: t})
			return
		}
		bc.emit(Instr{Op: opB2, A: dst, B: args[0], C: args[1], Aux: bi})
	default:
		bc.errOp("interp: unknown function %q", x.Fun)
	}
}

func (bc *bcCompiler) emitUserCallTo(x *cminus.CallExpr, fn *cminus.FuncDecl, want ctyp, dst int32) {
	if len(x.Args) != len(fn.Params) {
		bc.errOp("interp: %s expects %d args, got %d at %s",
			fn.Name, len(fn.Params), len(x.Args), x.P)
		return
	}
	callee := bc.bp.ensure(fn)
	binds := make([]vbind, 0, len(fn.Params))
	for i := range fn.Params {
		ps := callee.params[i]
		switch ps.kind {
		case psArr:
			id, ok := x.Args[i].(*cminus.Ident)
			if !ok {
				// Matches the closure engine's bind-time error: earlier
				// bindings (argument effects) have already run.
				bc.errOp("interp: array argument %d of %s must be an identifier at %s",
					i, fn.Name, x.P)
				return
			}
			src := bc.arraySlotFor(id.Name)
			bc.emit(Instr{Op: opACheck, B: int32(src.slot),
				Aux: bc.str(fmt.Sprintf("interp: unknown array %q passed to %s at %s", id.Name, fn.Name, x.P))})
			binds = append(binds, vbind{kind: psArr, src: int32(src.slot), dst: int32(ps.idx)})
		case psFlt:
			t := bc.allocF()
			bc.asFTo(x.Args[i], t)
			binds = append(binds, vbind{kind: psFlt, src: t, dst: int32(ps.idx)})
		default:
			t := bc.allocI()
			bc.asITo(x.Args[i], t)
			binds = append(binds, vbind{kind: psInt, src: t, dst: int32(ps.idx)})
		}
	}
	bc.bf.calls = append(bc.bf.calls, vcall{
		callee:   callee,
		binds:    binds,
		retFloat: cminus.IsFloatType(fn.RetType),
	})
	bc.emit(Instr{Op: opCallU, A: dst, Aux: int32(len(bc.bf.calls) - 1), K: b2i(want == tFloat)})
}

// ---- statements ----

func (bc *bcCompiler) block(b *cminus.Block) {
	for _, s := range b.Stmts {
		ti, tf := bc.save()
		bc.stmt(s)
		bc.restore(ti, tf)
	}
}

func (bc *bcCompiler) stmt(s cminus.Stmt) {
	switch x := s.(type) {
	case *cminus.DeclStmt:
		bc.decl(x)
	case *cminus.AssignStmt:
		bc.assign(x)
	case *cminus.ExprStmt:
		// Statement-position ++/-- on a local int slot discards its value:
		// one in-place add replaces the copy/move sequence.
		if u, ok := x.X.(*cminus.UnaryExpr); ok && (u.Op == "++" || u.Op == "--") {
			if id, ok := u.X.(*cminus.Ident); ok {
				if s := bc.fc.resolveScalar(id.Name); s.kind == syLocalInt {
					delta := int64(1)
					if u.Op == "--" {
						delta = -1
					}
					slot := int32(s.idx)
					bc.emit(Instr{Op: opIAddK, A: slot, B: slot, K: delta})
					return
				}
			}
		}
		if bc.fc.typeOf(x.X) == tFloat {
			bc.emitF(x.X)
		} else {
			bc.emitI(x.X)
		}
	case *cminus.IfStmt:
		if x.Else == nil {
			lend := bc.newLabel()
			bc.emitBranch(x.Cond, lend, false)
			bc.block(x.Then)
			bc.bind(lend)
			return
		}
		lelse, lend := bc.newLabel(), bc.newLabel()
		bc.emitBranch(x.Cond, lelse, false)
		bc.block(x.Then)
		bc.jump(Instr{Op: opJump}, lend)
		bc.bind(lelse)
		bc.stmt(x.Else)
		bc.bind(lend)
	case *cminus.ForStmt:
		bc.emitFor(x)
	case *cminus.WhileStmt:
		// Rotated, mirroring the compiled engine's order (condition first,
		// then the interrupt poll, then the body): the entry guard tests
		// the condition once, the bottom branch re-tests it and jumps back
		// if still true. continue lands on the bottom test, so each pass
		// is still cond → poll → body — only the opJump per iteration is
		// gone. The dynamic test count is identical to the unrotated form.
		ltop, lcond, lend := bc.newLabel(), bc.newLabel(), bc.newLabel()
		ti, tf := bc.save()
		bc.emitBranch(x.Cond, lend, false)
		bc.restore(ti, tf)
		bc.bind(ltop)
		bc.emit(Instr{Op: opEdge})
		bc.breaks = append(bc.breaks, lend)
		bc.conts = append(bc.conts, lcond)
		bc.block(x.Body)
		bc.breaks = bc.breaks[:len(bc.breaks)-1]
		bc.conts = bc.conts[:len(bc.conts)-1]
		bc.bind(lcond)
		ti, tf = bc.save()
		bc.emitBranch(x.Cond, ltop, true)
		bc.restore(ti, tf)
		bc.bind(lend)
	case *cminus.Block:
		bc.block(x)
	case *cminus.ReturnStmt:
		if x.X == nil {
			bc.emit(Instr{Op: opRetV})
			return
		}
		if bc.fc.typeOf(x.X) == tFloat {
			r := bc.emitF(x.X)
			bc.emit(Instr{Op: opRetF, A: r})
			return
		}
		r := bc.emitI(x.X)
		bc.emit(Instr{Op: opRetI, A: r})
	case *cminus.BreakStmt:
		bc.emitBreak()
	case *cminus.ContinueStmt:
		bc.emitCont()
	}
}

// emitBreak/emitCont jump within the current loop, or lower to the
// segment-control opcodes at a segment boundary (function top level, or
// a parallel-body segment where the control propagates to the worker).
func (bc *bcCompiler) emitBreak() {
	if n := len(bc.breaks); n > 0 && bc.breaks[n-1] >= 0 {
		bc.jump(Instr{Op: opJump}, bc.breaks[n-1])
		return
	}
	bc.emit(Instr{Op: opIterBrk})
}

func (bc *bcCompiler) emitCont() {
	if n := len(bc.conts); n > 0 && bc.conts[n-1] >= 0 {
		bc.jump(Instr{Op: opJump}, bc.conts[n-1])
		return
	}
	bc.emit(Instr{Op: opIterCnt})
}

func (bc *bcCompiler) decl(x *cminus.DeclStmt) {
	isFloat := cminus.IsFloatType(x.Type)
	for _, it := range x.Items {
		ti, tf := bc.save()
		if len(it.Dims) > 0 || it.PtrDeep > 0 {
			sym := bc.fc.arrays[it.Name]
			base := bc.tI
			for range it.Dims {
				bc.allocI()
			}
			for i, d := range it.Dims {
				bc.asITo(d, base+int32(i))
			}
			fl := int32(0)
			if isFloat {
				fl = 1
			}
			bc.emit(Instr{Op: opANew, A: int32(sym.slot), B: base, C: fl,
				K: int64(len(it.Dims)), Aux: bc.str(it.Name)})
			bc.restore(ti, tf)
			continue
		}
		s := bc.fc.scalars[it.Name]
		init := it.Init
		if init == nil {
			init = &cminus.IntLit{Val: 0}
		}
		bc.scalarStore(s, init)
		bc.restore(ti, tf)
	}
}

// emitIntCombine emits dst = op(a, b) at int type (zero-checked / and %).
func (bc *bcCompiler) emitIntCombine(dst, a, b int32, op string) {
	var code Opcode
	switch op {
	case "+":
		code = opIAdd
	case "-":
		code = opISub
	case "*":
		code = opIMul
	case "/":
		code = opIDiv
	case "%":
		code = opIMod
	default:
		bc.errOp("interp: unsupported operator %q", op)
		return
	}
	bc.emit(Instr{Op: code, A: dst, B: a, C: b})
}

func (bc *bcCompiler) emitFloatCombine(dst, a, b int32, op string) {
	var code Opcode
	switch op {
	case "+":
		code = opFAdd
	case "-":
		code = opFSub
	case "*":
		code = opFMul
	case "/":
		code = opFDiv
	default:
		bc.errOp("interp: unsupported operator %q", op)
		return
	}
	bc.emit(Instr{Op: code, A: dst, B: a, C: b})
}

func (bc *bcCompiler) assign(x *cminus.AssignStmt) {
	if id, ok := x.LHS.(*cminus.Ident); ok {
		s := bc.fc.resolveScalar(id.Name)
		if x.Op == "" {
			bc.scalarStore(s, x.RHS)
			return
		}
		// Compound op: RHS evaluates first (tree-walker order), the
		// combine runs at the promoted type (always int for %), and the
		// store converts back to the target's type.
		if x.Op == "%" || (s.typ() == tInt && bc.fc.typeOf(x.RHS) == tInt) {
			r := bc.allocI()
			bc.asITo(x.RHS, r)
			if s.typ() == tFloat {
				oldF := bc.allocF()
				if !bc.refLoadF(s, oldF) {
					bc.errOp("interp: unbound %q at %s", id.Name, x.P)
					return
				}
				oldI := bc.allocI()
				bc.emit(Instr{Op: opF2I, A: oldI, B: oldF})
				res := bc.allocI()
				bc.emitIntCombine(res, oldI, r, x.Op)
				resF := bc.allocF()
				bc.emit(Instr{Op: opI2F, A: resF, B: res})
				bc.refStoreF(s, resF)
				return
			}
			if s.kind == syLocalInt {
				// The slot is source and destination: combine in place,
				// skipping the load and store moves.
				bc.emitIntCombine(int32(s.idx), int32(s.idx), r, x.Op)
				return
			}
			old := bc.allocI()
			if !bc.refLoadI(s, old) {
				bc.errOp("interp: unbound %q at %s", id.Name, x.P)
				return
			}
			res := bc.allocI()
			bc.emitIntCombine(res, old, r, x.Op)
			bc.refStoreI(s, res)
			return
		}
		r := bc.allocF()
		bc.asFTo(x.RHS, r)
		if s.typ() == tInt {
			old := bc.allocI()
			if !bc.refLoadI(s, old) {
				bc.errOp("interp: unbound %q at %s", id.Name, x.P)
				return
			}
			oldF := bc.allocF()
			bc.emit(Instr{Op: opI2F, A: oldF, B: old})
			res := bc.allocF()
			bc.emitFloatCombine(res, oldF, r, x.Op)
			resI := bc.allocI()
			bc.emit(Instr{Op: opF2I, A: resI, B: res})
			bc.refStoreI(s, resI)
			return
		}
		if s.kind == syLocalFlt {
			bc.emitFloatCombine(int32(s.idx), int32(s.idx), r, x.Op)
			return
		}
		old := bc.allocF()
		if !bc.refLoadF(s, old) {
			bc.errOp("interp: unbound %q at %s", id.Name, x.P)
			return
		}
		res := bc.allocF()
		bc.emitFloatCombine(res, old, r, x.Op)
		bc.refStoreF(s, res)
		return
	}
	ix, ok := x.LHS.(*cminus.IndexExpr)
	if ok {
		if _, _, shaped := cminus.ArrayBase(ix); !shaped {
			ok = false
		}
	}
	if !ok {
		// Tree-walker order: the RHS evaluates (and may itself error)
		// before the target is rejected.
		if bc.fc.typeOf(x.RHS) == tFloat {
			bc.emitF(x.RHS)
		} else {
			bc.emitI(x.RHS)
		}
		bc.errOp("interp: unsupported assignment target at %s", x.P)
		return
	}
	if x.Op != "" {
		switch x.Op {
		case "+", "-", "*", "/", "%":
		default:
			// Unknown combine: the closure engine evaluates RHS and the
			// address, then throws from the combine table.
			if bc.fc.typeOf(x.RHS) == tFloat {
				bc.emitF(x.RHS)
			} else {
				bc.emitI(x.RHS)
			}
			slot, one, idx, aux, okA := bc.arrayAddr(ix, x.P)
			if okA && one {
				// 1-D addressing defers rank/bounds to the consuming
				// fused op; none follows here, so check explicitly —
				// those errors precede the operator rejection.
				bc.emit(Instr{Op: opAIdx0, A: bc.allocI(), B: slot, C: idx, K: 1, Aux: aux})
			}
			bc.errOp("interp: unsupported operator %q", x.Op)
			return
		}
	}
	// RHS first (static type), then addressing, then the store/update
	// with the dynamic element-type branch.
	if bc.fc.typeOf(x.RHS) == tFloat {
		r := bc.allocF()
		bc.emitFTo(x.RHS, r)
		slot, one, idx, aux, ok := bc.arrayAddr(ix, x.P)
		if !ok {
			return
		}
		op, k := opAStore1F, int64(0)
		if x.Op != "" {
			op, k = opAUpd1F, combineKind(x.Op)
		}
		if !one {
			if x.Op != "" {
				op = opAUpdF
			} else {
				op = opAStoreF
			}
		}
		bc.emit(Instr{Op: op, A: r, B: slot, C: idx, Aux: aux, K: k})
		return
	}
	r := bc.allocI()
	bc.emitITo(x.RHS, r)
	slot, one, idx, aux, ok := bc.arrayAddr(ix, x.P)
	if !ok {
		return
	}
	op, k := opAStore1I, int64(0)
	if x.Op != "" {
		op, k = opAUpd1I, combineKind(x.Op)
	}
	if !one {
		if x.Op != "" {
			op = opAUpdI
		} else {
			op = opAStoreI
		}
	}
	bc.emit(Instr{Op: op, A: r, B: slot, C: idx, Aux: aux, K: k})
}

// ---- loops ----

func (bc *bcCompiler) serialFor(loop *cminus.ForStmt) {
	if loop.Init != nil {
		ti, tf := bc.save()
		bc.stmt(loop.Init)
		bc.restore(ti, tf)
	}
	// Rotated loop: the exit test runs once as an entry guard, then again
	// at the bottom as the back-branch, saving the unconditional opJump
	// every iteration. The interrupt poll moves inside the guarded region,
	// so it fires once per body execution instead of once per test.
	ltop, lpost, lend := bc.newLabel(), bc.newLabel(), bc.newLabel()
	if loop.Cond != nil {
		ti, tf := bc.save()
		bc.emitBranch(loop.Cond, lend, false)
		bc.restore(ti, tf)
	}
	bc.bind(ltop)
	bc.emit(Instr{Op: opEdge})
	bc.breaks = append(bc.breaks, lend)
	bc.conts = append(bc.conts, lpost)
	bc.block(loop.Body)
	bc.breaks = bc.breaks[:len(bc.breaks)-1]
	bc.conts = bc.conts[:len(bc.conts)-1]
	bc.bind(lpost)
	if loop.Post != nil {
		ti, tf := bc.save()
		bc.stmt(loop.Post)
		bc.restore(ti, tf)
	}
	if loop.Cond != nil {
		ti, tf := bc.save()
		bc.emitBranch(loop.Cond, ltop, true)
		bc.restore(ti, tf)
	} else {
		bc.jump(Instr{Op: opJump}, ltop)
	}
	bc.bind(lend)
}

// emitCheck compiles one rendered runtime-check condition by reusing the
// mini-C expression parser, branching to the fallback label when false.
func (bc *bcCompiler) emitCheck(cond string, lfall int32) {
	src := fmt.Sprintf("void __c(void) { int __r; __r = (%s); }", cond)
	prog, err := cminus.Parse(src)
	if err != nil {
		bc.errOp("interp: bad runtime check %q: %v", cond, err)
		return
	}
	as := prog.Funcs[0].Body.Stmts[1].(*cminus.AssignStmt)
	ti, tf := bc.save()
	bc.emitBranch(as.RHS, lfall, false)
	bc.restore(ti, tf)
}

func (bc *bcCompiler) emitFor(loop *cminus.ForStmt) {
	lp := bc.fc.planFor(loop)
	if lp == nil || !lp.Chosen {
		bc.serialFor(loop)
		return
	}
	lserial, lfall, lend := bc.newLabel(), bc.newLabel(), bc.newLabel()
	bc.jump(Instr{Op: opJNoPar}, lserial)
	for _, chk := range lp.Decision.RuntimeChecks {
		bc.emitCheck(chk.String(), lfall)
	}
	bc.emit(Instr{Op: opParEnter})
	pl := vparloop{label: loop.Label}
	okInit := false
	if ivar, _, ok := initVarName(loop.Init); ok {
		switch s := bc.fc.resolveScalar(ivar); s.kind {
		case syLocalInt:
			okInit, pl.ivarSlot = true, int32(s.idx)
		case syCell:
			okInit, pl.ivarCell, pl.ivarSlot = true, true, int32(s.idx)
		}
	}
	cond, okCond := loop.Cond.(*cminus.BinaryExpr)
	okCond = okCond && cond.Op == "<"
	switch {
	case !okInit:
		bc.errOp("interp: parallel loop %s has non-canonical init", loop.Label)
	case !okCond:
		bc.errOp("interp: parallel loop %s has non-canonical condition", loop.Label)
	default:
		d := lp.Decision
		for _, p := range d.Privates {
			switch s := bc.fc.resolveScalar(p); s.kind {
			case syLocalInt:
				pl.privs = append(pl.privs, privSlot{kind: pkLocalInt, slot: s.idx})
			case syLocalFlt:
				pl.privs = append(pl.privs, privSlot{kind: pkLocalFlt, slot: s.idx})
			case syCell:
				pl.privs = append(pl.privs, privSlot{kind: pkCell, slot: s.idx, float: s.float})
			}
		}
		for _, rv := range sortedReductions(d.Reductions) {
			switch s := bc.fc.resolveScalar(rv[0]); s.kind {
			case syLocalInt:
				pl.reds = append(pl.reds, redSlot{kind: pkLocalInt, slot: s.idx, op: rv[1]})
			case syLocalFlt:
				pl.reds = append(pl.reds, redSlot{kind: pkLocalFlt, slot: s.idx, float: true, op: rv[1]})
			case syCell:
				pl.reds = append(pl.reds, redSlot{kind: pkCell, slot: s.idx, float: s.float, op: rv[1]})
			}
		}
		nreg := bc.allocI()
		bc.asITo(cond.Y, nreg)
		bc.bf.pars = append(bc.bf.pars, pl)
		pidx := len(bc.bf.pars) - 1
		bc.segs = append(bc.segs, pendingSeg{body: loop.Body, pidx: pidx})
		ctl := bc.allocI()
		bc.emit(Instr{Op: opPar, A: ctl, B: nreg, Aux: int32(pidx)})
		bc.jump(Instr{Op: opJIEqK, B: ctl, K: int64(ctlNext)}, lend)
		lret, lbrk := bc.newLabel(), bc.newLabel()
		bc.jump(Instr{Op: opJIEqK, B: ctl, K: int64(ctlReturn)}, lret)
		bc.jump(Instr{Op: opJIEqK, B: ctl, K: int64(ctlBreak)}, lbrk)
		bc.emitCont() // remaining control: ctlContinue
		bc.bind(lret)
		bc.emit(Instr{Op: opIterRet})
		bc.bind(lbrk)
		bc.emitBreak()
	}
	bc.bind(lfall)
	bc.emit(Instr{Op: opFall})
	bc.bind(lserial)
	bc.serialFor(loop)
	bc.bind(lend)
}

// flushSegs emits the deferred parallel-body segments after the main
// stream. Each segment is one loop iteration's body, entered by the
// parallel driver with the loop variable preset, ending in opIterEnd;
// top-level break/continue lower to the worker-control opcodes. A
// segment can itself contain chosen loops, queuing further segments.
func (bc *bcCompiler) flushSegs() {
	for len(bc.segs) > 0 {
		seg := bc.segs[0]
		bc.segs = bc.segs[1:]
		bc.bf.pars[seg.pidx].bodyPC = bc.here()
		bc.barrier = bc.here() // the parallel driver jumps here
		// Worker frames share the named slots; temps restart above them.
		bc.tI = int32(bc.fc.cf.nInts)
		bc.tF = int32(bc.fc.cf.nFlts)
		bc.breaks = append(bc.breaks, -1)
		bc.conts = append(bc.conts, -1)
		bc.block(seg.body)
		bc.emit(Instr{Op: opIterEnd})
		bc.breaks = bc.breaks[:len(bc.breaks)-1]
		bc.conts = bc.conts[:len(bc.conts)-1]
	}
}
