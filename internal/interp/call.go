package interp

import (
	"fmt"

	"repro/internal/cminus"
)

// callUser executes a user-defined function called from program code:
// scalar parameters bind by value, array/pointer parameters bind by
// reference (the argument must be a plain identifier naming an array).
// Array bindings made by the callee — parameter names and local array
// declarations — are scoped to the call via the machine shadow stack.
func (m *Machine) callUser(fn *cminus.FuncDecl, c *cminus.CallExpr, e *env) (Value, error) {
	if len(c.Args) != len(fn.Params) {
		return Value{}, fmt.Errorf("interp: %s expects %d args, got %d at %s",
			fn.Name, len(fn.Params), len(c.Args), c.P)
	}
	callee := &env{vars: map[string]*Value{}}
	mark := len(m.arrShadows)
	prevMark := m.callMark
	m.callMark = mark
	defer func() {
		m.restoreArrays(mark)
		m.callMark = prevMark
	}()
	for i, prm := range fn.Params {
		if prm.PtrDeep > 0 || len(prm.Dims) > 0 {
			id, ok := c.Args[i].(*cminus.Ident)
			if !ok {
				return Value{}, fmt.Errorf("interp: array argument %d of %s must be an identifier at %s",
					i, fn.Name, c.P)
			}
			arr, found := m.Arrays[id.Name]
			if !found {
				return Value{}, fmt.Errorf("interp: unknown array %q passed to %s at %s",
					id.Name, fn.Name, c.P)
			}
			m.bindArray(prm.Name, arr)
			continue
		}
		v, err := m.eval(c.Args[i], e)
		if err != nil {
			return Value{}, err
		}
		callee.define(prm.Name, convert(v, cminus.IsFloatType(prm.Type)))
	}

	prevRet := m.retVal
	m.retVal = Value{}
	err := m.execBlock(fn.Body, callee, m.funcPlan(fn.Name))
	ret := m.retVal
	m.retVal = prevRet
	if err == errReturn {
		err = nil
	}
	if err != nil {
		return Value{}, err
	}
	return convert(ret, cminus.IsFloatType(fn.RetType)), nil
}
