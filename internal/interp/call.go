package interp

import (
	"fmt"
	"strings"

	"repro/internal/cminus"
)

// callUser executes a user-defined function called from program code:
// scalar parameters bind by value, array/pointer parameters bind by
// reference (the argument must be a plain identifier naming an array).
// The callee's parameter names temporarily shadow same-named arrays.
func (m *Machine) callUser(fn *cminus.FuncDecl, c *cminus.CallExpr, e *env) (Value, error) {
	if len(c.Args) != len(fn.Params) {
		return Value{}, fmt.Errorf("interp: %s expects %d args, got %d at %s",
			fn.Name, len(fn.Params), len(c.Args), c.P)
	}
	callee := &env{vars: map[string]*Value{}}
	type shadow struct {
		name string
		arr  *Array
		had  bool
	}
	var shadows []shadow
	for i, prm := range fn.Params {
		if prm.PtrDeep > 0 || len(prm.Dims) > 0 {
			id, ok := c.Args[i].(*cminus.Ident)
			if !ok {
				return Value{}, fmt.Errorf("interp: array argument %d of %s must be an identifier at %s",
					i, fn.Name, c.P)
			}
			arr, found := m.Arrays[id.Name]
			if !found {
				return Value{}, fmt.Errorf("interp: unknown array %q passed to %s at %s",
					id.Name, fn.Name, c.P)
			}
			prev, had := m.Arrays[prm.Name]
			shadows = append(shadows, shadow{name: prm.Name, arr: prev, had: had})
			m.Arrays[prm.Name] = arr
			continue
		}
		v, err := m.eval(c.Args[i], e)
		if err != nil {
			return Value{}, err
		}
		isFloat := strings.Contains(prm.Type, "double") || strings.Contains(prm.Type, "float")
		callee.define(prm.Name, convert(v, isFloat))
	}
	defer func() {
		for i := len(shadows) - 1; i >= 0; i-- {
			s := shadows[i]
			if s.had {
				m.Arrays[s.name] = s.arr
			} else {
				delete(m.Arrays, s.name)
			}
		}
	}()

	prevRet := m.retVal
	m.retVal = Value{}
	err := m.execBlock(fn.Body, callee, m.funcPlan(fn.Name))
	ret := m.retVal
	m.retVal = prevRet
	if err == errReturn {
		err = nil
	}
	if err != nil {
		return Value{}, err
	}
	isFloat := strings.Contains(fn.RetType, "double") || strings.Contains(fn.RetType, "float")
	return convert(ret, isFloat), nil
}
