package interp

import (
	"math"
	"testing"

	"repro/internal/cminus"
)

func mustMachine(t *testing.T, src string) *Machine {
	t.Helper()
	m, err := New(cminus.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOperatorsAndCasts(t *testing.T) {
	src := `
void f(int *out, double *fout) {
    int a, b;
    a = 13; b = 5;
    out[0] = a % b;
    out[1] = a / b;
    out[2] = a & b;
    out[3] = a | b;
    out[4] = a ^ b;
    out[5] = a << 2;
    out[6] = a >> 1;
    out[7] = ~a;
    out[8] = !a;
    out[9] = a > b ? a : b;
    out[10] = (int)(7.9);
    fout[0] = (double)a / (double)b;
    fout[1] = -2.5;
}
`
	m := mustMachine(t, src)
	out := NewIntArray("out", 11)
	fout := NewFloatArray("fout", 2)
	if err := m.Call("f", out, fout); err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 2, 13 & 5, 13 | 5, 13 ^ 5, 52, 6, ^int64(13), 0, 13, 7}
	for i, w := range want {
		if out.Ints[i] != w {
			t.Errorf("out[%d] = %d, want %d", i, out.Ints[i], w)
		}
	}
	if math.Abs(fout.Flts[0]-2.6) > 1e-12 || fout.Flts[1] != -2.5 {
		t.Errorf("fout = %v", fout.Flts)
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand would divide by zero; short circuit avoids it.
	src := `
void f(int z, int *out) {
    out[0] = (z != 0) && (10 / z > 1);
    out[1] = (z == 0) || (10 / (z + 1) > 100);
}
`
	m := mustMachine(t, src)
	out := NewIntArray("out", 2)
	if err := m.Call("f", int64(0), out); err != nil {
		t.Fatal(err)
	}
	if out.Ints[0] != 0 || out.Ints[1] != 1 {
		t.Errorf("short circuit: %v", out.Ints)
	}
}

func TestUserCallWithReturn(t *testing.T) {
	src := `
int square(int x) { return x * x; }
double half(double x) { return x / 2.0; }
void f(int *out, double *fout) {
    out[0] = square(7);
    fout[0] = half(9.0);
}
`
	m := mustMachine(t, src)
	out := NewIntArray("out", 1)
	fout := NewFloatArray("fout", 1)
	if err := m.Call("f", out, fout); err != nil {
		t.Fatal(err)
	}
	if out.Ints[0] != 49 || fout.Flts[0] != 4.5 {
		t.Errorf("returns: %v %v", out.Ints, fout.Flts)
	}
}

func TestUserCallArrayShadowing(t *testing.T) {
	// The callee's parameter name collides with a caller array; binding
	// must shadow and restore.
	src := `
void inc(int *data) { data[0] = data[0] + 1; }
void f(int *data, int *other) {
    inc(other);
    data[0] = data[0] + 100;
}
`
	m := mustMachine(t, src)
	data := NewIntArray("data", 1)
	other := NewIntArray("other", 1)
	if err := m.Call("f", data, other); err != nil {
		t.Fatal(err)
	}
	if other.Ints[0] != 1 || data.Ints[0] != 100 {
		t.Errorf("shadowing broken: data=%v other=%v", data.Ints, other.Ints)
	}
}

func TestErrorPaths(t *testing.T) {
	m := mustMachine(t, `void f(int x) { x = x / 0; }`)
	if err := m.Call("f", int64(1)); err == nil {
		t.Error("division by zero should error")
	}
	m = mustMachine(t, `void f(int x) { x = x % 0; }`)
	if err := m.Call("f", int64(1)); err == nil {
		t.Error("modulo by zero should error")
	}
	m = mustMachine(t, `void f(void) { int x; x = nosuchfn(1); }`)
	if err := m.Call("f"); err == nil {
		t.Error("unknown function should error")
	}
	m = mustMachine(t, `void f(void) { int x; x = y + 1; }`)
	if err := m.Call("f"); err == nil {
		t.Error("unbound variable should error")
	}
	m = mustMachine(t, `void f(int *a) { }`)
	if err := m.Call("f"); err == nil {
		t.Error("arity mismatch should error")
	}
	if err := m.Call("nope"); err == nil {
		t.Error("missing function should error")
	}
}

func TestMultiDimArrays(t *testing.T) {
	src := `
void f(int g[][4][5], int *out) {
    int i, j, k;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 4; j++)
            for (k = 0; k < 5; k++)
                g[i][j][k] = i*100 + j*10 + k;
    out[0] = g[2][3][4];
}
`
	m := mustMachine(t, src)
	g := NewIntArray("g", 3, 4, 5)
	out := NewIntArray("out", 1)
	if err := m.Call("f", g, out); err != nil {
		t.Fatal(err)
	}
	if out.Ints[0] != 234 {
		t.Errorf("g[2][3][4] = %d", out.Ints[0])
	}
	// Wrong dimensionality errors.
	if _, err := g.Get([]int64{1, 2}); err == nil {
		t.Error("partial indexing should error")
	}
}

func TestLocalArrayDeclaration(t *testing.T) {
	src := `
void f(int *out) {
    double tmp[8];
    int i;
    for (i = 0; i < 8; i++) tmp[i] = (double)i;
    out[0] = (int)(tmp[3] + tmp[4]);
}
`
	m := mustMachine(t, src)
	out := NewIntArray("out", 1)
	if err := m.Call("f", out); err != nil {
		t.Fatal(err)
	}
	if out.Ints[0] != 7 {
		t.Errorf("got %d", out.Ints[0])
	}
}

func TestValueHelpers(t *testing.T) {
	v := IntVal(3)
	if v.AsFloat() != 3 || !v.Truthy() || v.String() != "3" {
		t.Error("int value helpers")
	}
	f := FloatVal(2.5)
	if f.AsInt() != 2 || f.String() != "2.5" || !f.Truthy() {
		t.Error("float value helpers")
	}
	if FloatVal(0).Truthy() || IntVal(0).Truthy() {
		t.Error("zero is falsy")
	}
}

func TestMaxAbsDiffShapes(t *testing.T) {
	a := NewIntArray("a", 3)
	b := NewFloatArray("b", 3)
	if !math.IsInf(MaxAbsDiff(a, b), 1) {
		t.Error("type mismatch is +inf")
	}
	c := NewIntArray("c", 3)
	c.Ints[1] = 7
	if MaxAbsDiff(a, c) != 7 {
		t.Error("int diff")
	}
	d := NewFloatArray("d", 3)
	d.Flts[2] = -1.5
	if MaxAbsDiff(b, d) != 1.5 {
		t.Error("float diff")
	}
}
