package interp

import (
	"fmt"
	"math"

	"repro/internal/budget"
	"repro/internal/sched"
)

// The bytecode VM: engine tier 3. The compiler in bytecode.go lowers the
// slot-resolved IR to a flat []Instr; this file is the runtime — a single
// for/switch dispatch loop over typed value columns (fr.ints / fr.flts /
// fr.cells / fr.arrs), with zero interface boxing and zero steady-state
// allocations. Cycle metering is billed through internal/budget once per
// vmQuantum instructions, so a step budget bounds VM work with a
// deterministic abort point, and context cancellation keeps the same
// throttled back-edge polls as the other two engines (opEdge).

// vmQuantum is the metering quantum: the dispatch loop bills one
// Budget.Step(vmQuantum) every vmQuantum instructions, so an exhausted
// budget aborts within one quantum of the limit.
const vmQuantum = 256

// ensureBytecode compiles the program to bytecode on first use and
// recompiles when the plan pointer changed (plans are immutable).
func (m *Machine) ensureBytecode() *bytecodeProgram {
	if m.bc == nil || m.bc.plan != m.Plan {
		sp := m.Trace.Start(0, "compile-bc")
		m.bc = compileBytecode(m)
		m.Trace.End(sp)
	}
	return m.bc
}

// callVM runs a function on the bytecode VM. Engine errors and budget
// aborts surface as errors; foreign panics propagate.
func (m *Machine) callVM(name string, args []Arg) (err error) {
	bp := m.ensureBytecode()
	bf := bp.funcs[name]
	if bf == nil {
		return fmt.Errorf("interp: no function %q", name)
	}
	if len(args) != len(bf.params) {
		return fmt.Errorf("interp: %s expects %d args, got %d", name, len(bf.params), len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case engineErr:
				err = e.err
			case budget.Abort:
				err = e.Err
			default:
				panic(r)
			}
		}
	}()
	fr := bf.newFrame()
	defer bf.release(fr)
	bf.bindEntry(fr, m)
	for i, ps := range bf.params {
		switch ps.kind {
		case psArr:
			a, ok := args[i].(*Array)
			if !ok {
				return fmt.Errorf("interp: unsupported argument %T", args[i])
			}
			fr.arrs[ps.idx] = a
		case psFlt:
			v, ok := argValue(args[i])
			if !ok {
				return fmt.Errorf("interp: unsupported argument %T", args[i])
			}
			fr.flts[ps.idx] = v.AsFloat()
		default:
			v, ok := argValue(args[i])
			if !ok {
				return fmt.Errorf("interp: unsupported argument %T", args[i])
			}
			fr.ints[ps.idx] = v.AsInt()
		}
	}
	fr.ret = Value{}
	if m.Trace.Enabled() {
		sp := m.Trace.StartFunc(0, "exec-vm", name)
		defer m.Trace.End(sp)
	}
	m.runSeg(bf, fr, 0)
	return nil
}

// vmArr1Fail is the cold side of the fused 1-D access checks: the hot
// loop folds nil + rank + bounds into one predictable branch (the bounds
// test is a single unsigned compare — Dims[0] of a 1-D array equals its
// slice length, so it is never negative) and calls here only to throw,
// re-deriving which check failed so the error text and ordering match
// the closure engine exactly.
//
//go:noinline
func vmArr1Fail(bf *bfunc, a *Array, i int64, aux int32) {
	if a == nil {
		throwf("%s", bf.strs[aux])
	}
	if len(a.Dims) != 1 {
		throwf("interp: array %s indexed with 1 subscripts, has %d dims", a.Name, len(a.Dims))
	}
	throwf("interp: array %s index %d out of range [0,%d) in dim 0", a.Name, i, a.Dims[0])
}

func vmIntCombine(k int64, a, b int64) int64 {
	switch k {
	case cmbAdd:
		return a + b
	case cmbSub:
		return a - b
	case cmbMul:
		return a * b
	case cmbDiv:
		if b == 0 {
			throwf("interp: integer division by zero")
		}
		return a / b
	default:
		if b == 0 {
			throwf("interp: modulo by zero")
		}
		return a % b
	}
}

func vmFloatCombine(k int64, a, b float64) float64 {
	switch k {
	case cmbAdd:
		return a + b
	case cmbSub:
		return a - b
	case cmbMul:
		return a * b
	case cmbDiv:
		return a / b
	default:
		bi := int64(b)
		if bi == 0 {
			throwf("interp: modulo by zero")
		}
		return float64(int64(a) % bi)
	}
}

// runSeg executes the instruction stream from pc until a control-flow
// terminator (return, segment end, or a worker break/continue) and
// returns the control code. The hot loop reads instructions from one
// contiguous slice and values from typed columns — no interface values,
// no per-node calls, no allocations.
func (m *Machine) runSeg(bf *bfunc, fr *frame, pc int32) control {
	b := m.Budget
	code := bf.code
	ints, flts := fr.ints, fr.flts
	meter := int32(vmQuantum)
	for {
		meter--
		if meter <= 0 {
			b.Step(vmQuantum)
			meter = vmQuantum
		}
		in := &code[pc]
		pc++
		switch in.Op {
		case opNop:
		case opIConst:
			ints[in.A] = in.K
		case opFConst:
			flts[in.A] = in.KF
		case opIMove:
			ints[in.A] = ints[in.B]
		case opFMove:
			flts[in.A] = flts[in.B]
		case opI2F:
			flts[in.A] = float64(ints[in.B])
		case opF2I:
			ints[in.A] = int64(flts[in.B])

		case opIAdd:
			ints[in.A] = ints[in.B] + ints[in.C]
		case opIAddK:
			ints[in.A] = ints[in.B] + in.K
		case opISub:
			ints[in.A] = ints[in.B] - ints[in.C]
		case opIMul:
			ints[in.A] = ints[in.B] * ints[in.C]
		case opIMulK:
			ints[in.A] = ints[in.B] * in.K
		case opIMulAdd:
			ints[in.A] = ints[in.B]*ints[in.C] + ints[in.Aux]
		case opIMulKAdd:
			ints[in.A] = ints[in.B]*in.K + ints[in.C]
		case opIDiv:
			d := ints[in.C]
			if d == 0 {
				throwf("interp: integer division by zero")
			}
			ints[in.A] = ints[in.B] / d
		case opIMod:
			d := ints[in.C]
			if d == 0 {
				throwf("interp: modulo by zero")
			}
			ints[in.A] = ints[in.B] % d
		case opIAnd:
			ints[in.A] = ints[in.B] & ints[in.C]
		case opIOr:
			ints[in.A] = ints[in.B] | ints[in.C]
		case opIXor:
			ints[in.A] = ints[in.B] ^ ints[in.C]
		case opIShl:
			ints[in.A] = ints[in.B] << uint(ints[in.C])
		case opIShr:
			ints[in.A] = ints[in.B] >> uint(ints[in.C])
		case opINeg:
			ints[in.A] = -ints[in.B]
		case opIBNot:
			ints[in.A] = ^ints[in.B]

		case opFAdd:
			flts[in.A] = flts[in.B] + flts[in.C]
		case opFSub:
			flts[in.A] = flts[in.B] - flts[in.C]
		case opFMul:
			flts[in.A] = flts[in.B] * flts[in.C]
		case opFMulAcc:
			// The explicit float64 conversion forces the product to round
			// before the add (the Go spec permits fusing otherwise), so
			// results stay bit-identical with the unfused opFMul+opFAdd
			// pair the other engines execute.
			flts[in.A] = flts[in.A] + float64(flts[in.B]*flts[in.C])
		case opFMulAccL:
			// flts[A] += flts[B] * arrs[K][ints[C]]: the checked 1-D load
			// feeds the multiply-accumulate directly. Same rounding rules
			// as opFMulAcc.
			a := fr.arrs[in.K]
			i := ints[in.C]
			if a == nil || len(a.Dims) != 1 || uint64(i) >= uint64(a.Dims[0]) {
				vmArr1Fail(bf, a, i, in.Aux)
			}
			var v float64
			if a.Float {
				v = a.Flts[i]
			} else {
				v = float64(a.Ints[i])
			}
			flts[in.A] = flts[in.A] + float64(flts[in.B]*v)
		case opIMulAddL:
			// ints[A] = arrs[hi(K)][ints[C]] * ints[B] + ints[Aux]: the
			// subscripted-subscript index shape a1[i]*k+t in one step.
			a := fr.arrs[int32(in.K>>32)]
			i := ints[in.C]
			if a == nil || len(a.Dims) != 1 || uint64(i) >= uint64(a.Dims[0]) {
				vmArr1Fail(bf, a, i, int32(uint32(in.K)))
			}
			var v int64
			if a.Float {
				v = int64(a.Flts[i])
			} else {
				v = a.Ints[i]
			}
			ints[in.A] = v*ints[in.B] + ints[in.Aux]
		case opFDiv:
			flts[in.A] = flts[in.B] / flts[in.C]
		case opFNeg:
			flts[in.A] = -flts[in.B]

		case opILt:
			ints[in.A] = b2i(ints[in.B] < ints[in.C])
		case opILe:
			ints[in.A] = b2i(ints[in.B] <= ints[in.C])
		case opIGt:
			ints[in.A] = b2i(ints[in.B] > ints[in.C])
		case opIGe:
			ints[in.A] = b2i(ints[in.B] >= ints[in.C])
		case opIEq:
			ints[in.A] = b2i(ints[in.B] == ints[in.C])
		case opINe:
			ints[in.A] = b2i(ints[in.B] != ints[in.C])
		case opFLt:
			ints[in.A] = b2i(flts[in.B] < flts[in.C])
		case opFLe:
			ints[in.A] = b2i(flts[in.B] <= flts[in.C])
		case opFGt:
			ints[in.A] = b2i(flts[in.B] > flts[in.C])
		case opFGe:
			ints[in.A] = b2i(flts[in.B] >= flts[in.C])
		case opFEq:
			ints[in.A] = b2i(flts[in.B] == flts[in.C])
		case opFNe:
			ints[in.A] = b2i(flts[in.B] != flts[in.C])

		case opJump:
			pc = in.A
		case opJNZ:
			if (ints[in.B] != 0) != (in.K != 0) {
				pc = in.A
			}
		case opJFNZ:
			if (flts[in.B] != 0) != (in.K != 0) {
				pc = in.A
			}
		case opJILt:
			if (ints[in.B] < ints[in.C]) != (in.K != 0) {
				pc = in.A
			}
		case opJILe:
			if (ints[in.B] <= ints[in.C]) != (in.K != 0) {
				pc = in.A
			}
		case opJIGt:
			if (ints[in.B] > ints[in.C]) != (in.K != 0) {
				pc = in.A
			}
		case opJIGe:
			if (ints[in.B] >= ints[in.C]) != (in.K != 0) {
				pc = in.A
			}
		case opJIEq:
			if (ints[in.B] == ints[in.C]) != (in.K != 0) {
				pc = in.A
			}
		case opJINe:
			if (ints[in.B] != ints[in.C]) != (in.K != 0) {
				pc = in.A
			}
		case opJIEqK:
			if ints[in.B] == in.K {
				pc = in.A
			}
		case opJIKLt:
			if (ints[in.B] < in.K) != (in.C != 0) {
				pc = in.A
			}
		case opJIKLe:
			if (ints[in.B] <= in.K) != (in.C != 0) {
				pc = in.A
			}
		case opJIKGt:
			if (ints[in.B] > in.K) != (in.C != 0) {
				pc = in.A
			}
		case opJIKGe:
			if (ints[in.B] >= in.K) != (in.C != 0) {
				pc = in.A
			}
		case opJIKEq:
			if (ints[in.B] == in.K) != (in.C != 0) {
				pc = in.A
			}
		case opJIKNe:
			if (ints[in.B] != in.K) != (in.C != 0) {
				pc = in.A
			}

		case opJIncLt, opJIncLe, opJIncGt, opJIncGe, opJIncEq, opJIncNe:
			// Fused for-loop back edge: bump the counter, then compare
			// against the register bound.
			v := ints[in.B] + int64(in.Aux)
			ints[in.B] = v
			r := ints[in.C]
			var cmp bool
			switch in.Op {
			case opJIncLt:
				cmp = v < r
			case opJIncLe:
				cmp = v <= r
			case opJIncGt:
				cmp = v > r
			case opJIncGe:
				cmp = v >= r
			case opJIncEq:
				cmp = v == r
			default:
				cmp = v != r
			}
			if cmp != (in.K != 0) {
				pc = in.A
			}
		case opJIKIncLt, opJIKIncLe, opJIKIncGt, opJIKIncGe, opJIKIncEq, opJIKIncNe:
			// Same back edge with an immediate bound (sense in C).
			v := ints[in.B] + int64(in.Aux)
			ints[in.B] = v
			var cmp bool
			switch in.Op {
			case opJIKIncLt:
				cmp = v < in.K
			case opJIKIncLe:
				cmp = v <= in.K
			case opJIKIncGt:
				cmp = v > in.K
			case opJIKIncGe:
				cmp = v >= in.K
			case opJIKIncEq:
				cmp = v == in.K
			default:
				cmp = v != in.K
			}
			if cmp != (in.C != 0) {
				pc = in.A
			}
		case opJILtA, opJILeA, opJIGtA, opJIGeA, opJIEqA, opJINeA:
			// Compare+branch against arrs[lo(K)][ints[C]+disp]; the branch
			// sense is bit 32 of K, the displacement bits 40-63.
			a := fr.arrs[int32(uint32(in.K))]
			i := ints[in.C] + in.K>>40
			if a == nil || len(a.Dims) != 1 || uint64(i) >= uint64(a.Dims[0]) {
				vmArr1Fail(bf, a, i, in.Aux)
			}
			var r int64
			if a.Float {
				r = int64(a.Flts[i])
			} else {
				r = a.Ints[i]
			}
			l := ints[in.B]
			var cmp bool
			switch in.Op {
			case opJILtA:
				cmp = l < r
			case opJILeA:
				cmp = l <= r
			case opJIGtA:
				cmp = l > r
			case opJIGeA:
				cmp = l >= r
			case opJIEqA:
				cmp = l == r
			default:
				cmp = l != r
			}
			if cmp != (in.K>>32&1 != 0) {
				pc = in.A
			}

		case opGetGI:
			ints[in.A] = bf.globals[in.Aux].I
		case opGetGF:
			flts[in.A] = bf.globals[in.Aux].F
		case opSetGI:
			bf.globals[in.Aux].I = ints[in.A]
		case opSetGF:
			bf.globals[in.Aux].F = flts[in.A]
		case opGetCI:
			ints[in.A] = fr.cells[in.B].I
		case opGetCF:
			flts[in.A] = fr.cells[in.B].F
		case opSetCI:
			fr.cells[in.B].I = ints[in.A]
		case opSetCF:
			fr.cells[in.B].F = flts[in.A]

		case opALoad1I:
			a := fr.arrs[in.B]
			i := ints[in.C]
			if a == nil || len(a.Dims) != 1 || uint64(i) >= uint64(a.Dims[0]) {
				vmArr1Fail(bf, a, i, in.Aux)
			}
			if a.Float {
				ints[in.A] = int64(a.Flts[i])
			} else {
				ints[in.A] = a.Ints[i]
			}
		case opALoad1F:
			a := fr.arrs[in.B]
			i := ints[in.C]
			if a == nil || len(a.Dims) != 1 || uint64(i) >= uint64(a.Dims[0]) {
				vmArr1Fail(bf, a, i, in.Aux)
			}
			if a.Float {
				flts[in.A] = a.Flts[i]
			} else {
				flts[in.A] = float64(a.Ints[i])
			}
		case opAStore1I:
			a := fr.arrs[in.B]
			i := ints[in.C]
			if a == nil || len(a.Dims) != 1 || uint64(i) >= uint64(a.Dims[0]) {
				vmArr1Fail(bf, a, i, in.Aux)
			}
			if a.Float {
				a.Flts[i] = float64(ints[in.A])
			} else {
				a.Ints[i] = ints[in.A]
			}
		case opAStore1F:
			a := fr.arrs[in.B]
			i := ints[in.C]
			if a == nil || len(a.Dims) != 1 || uint64(i) >= uint64(a.Dims[0]) {
				vmArr1Fail(bf, a, i, in.Aux)
			}
			if a.Float {
				a.Flts[i] = flts[in.A]
			} else {
				a.Ints[i] = int64(flts[in.A])
			}
		case opAUpd1I:
			a := fr.arrs[in.B]
			i := ints[in.C]
			if a == nil || len(a.Dims) != 1 || uint64(i) >= uint64(a.Dims[0]) {
				vmArr1Fail(bf, a, i, in.Aux)
			}
			if a.Float {
				a.Flts[i] = vmFloatCombine(in.K, a.Flts[i], float64(ints[in.A]))
			} else {
				a.Ints[i] = vmIntCombine(in.K, a.Ints[i], ints[in.A])
			}
		case opAUpd1F:
			a := fr.arrs[in.B]
			i := ints[in.C]
			if a == nil || len(a.Dims) != 1 || uint64(i) >= uint64(a.Dims[0]) {
				vmArr1Fail(bf, a, i, in.Aux)
			}
			if a.Float {
				a.Flts[i] = vmFloatCombine(in.K, a.Flts[i], flts[in.A])
			} else {
				a.Ints[i] = int64(vmFloatCombine(in.K, float64(a.Ints[i]), flts[in.A]))
			}

		case opGathLoadI, opGathLoadF, opGathStoreI, opGathStoreF:
			// Fused a2[a1[i]] (the subscripted-subscript access itself),
			// produced by the peephole in bytecode.go. Check order matches
			// the unfused [probe][load1][access] sequence: outer nil (the
			// absorbed probe), inner nil+rank+bounds+load, outer
			// rank+bounds, access.
			a2 := fr.arrs[in.B]
			if a2 == nil {
				throwf("%s", bf.strs[in.Aux])
			}
			a1 := fr.arrs[int32(in.K>>32)]
			i1 := ints[in.C]
			if a1 == nil || len(a1.Dims) != 1 || uint64(i1) >= uint64(a1.Dims[0]) {
				vmArr1Fail(bf, a1, i1, int32(uint32(in.K)))
			}
			var ix int64
			if a1.Float {
				ix = int64(a1.Flts[i1])
			} else {
				ix = a1.Ints[i1]
			}
			if len(a2.Dims) != 1 || uint64(ix) >= uint64(a2.Dims[0]) {
				vmArr1Fail(bf, a2, ix, in.Aux)
			}
			switch in.Op {
			case opGathLoadI:
				if a2.Float {
					ints[in.A] = int64(a2.Flts[ix])
				} else {
					ints[in.A] = a2.Ints[ix]
				}
			case opGathLoadF:
				if a2.Float {
					flts[in.A] = a2.Flts[ix]
				} else {
					flts[in.A] = float64(a2.Ints[ix])
				}
			case opGathStoreI:
				if a2.Float {
					a2.Flts[ix] = float64(ints[in.A])
				} else {
					a2.Ints[ix] = ints[in.A]
				}
			default:
				if a2.Float {
					a2.Flts[ix] = flts[in.A]
				} else {
					a2.Ints[ix] = int64(flts[in.A])
				}
			}

		case opGathMulAccF:
			// flts[A>>16] += flts[A&0xffff] * a2[a1[i]]: the gather-load
			// cascade folded into a multiply-accumulate. Checks mirror
			// opGathLoadF exactly; rounding mirrors opFMulAcc.
			a2 := fr.arrs[in.B]
			if a2 == nil {
				throwf("%s", bf.strs[in.Aux])
			}
			a1 := fr.arrs[int32(in.K>>32)]
			i1 := ints[in.C]
			if a1 == nil || len(a1.Dims) != 1 || uint64(i1) >= uint64(a1.Dims[0]) {
				vmArr1Fail(bf, a1, i1, int32(uint32(in.K)))
			}
			var ix int64
			if a1.Float {
				ix = int64(a1.Flts[i1])
			} else {
				ix = a1.Ints[i1]
			}
			if len(a2.Dims) != 1 || uint64(ix) >= uint64(a2.Dims[0]) {
				vmArr1Fail(bf, a2, ix, in.Aux)
			}
			var v float64
			if a2.Float {
				v = a2.Flts[ix]
			} else {
				v = float64(a2.Ints[ix])
			}
			flts[in.A>>16] = flts[in.A>>16] + float64(flts[in.A&0xffff]*v)

		case opOffLoadI, opOffLoadF, opOffStoreI, opOffStoreF:
			// Fused multi-dim-indexed subscript feeding a 1-D access:
			// a2[a1[i][j]...]. The inner offset in ints[C] was already
			// checked by the opAIdx chain, so the inner load is raw; the
			// outer access keeps its full 1-D checks.
			a2 := fr.arrs[in.B]
			if a2 == nil {
				throwf("%s", bf.strs[in.Aux])
			}
			a1 := fr.arrs[in.K]
			var ix int64
			if a1.Float {
				ix = int64(a1.Flts[ints[in.C]])
			} else {
				ix = a1.Ints[ints[in.C]]
			}
			if len(a2.Dims) != 1 || uint64(ix) >= uint64(a2.Dims[0]) {
				vmArr1Fail(bf, a2, ix, in.Aux)
			}
			switch in.Op {
			case opOffLoadI:
				if a2.Float {
					ints[in.A] = int64(a2.Flts[ix])
				} else {
					ints[in.A] = a2.Ints[ix]
				}
			case opOffLoadF:
				if a2.Float {
					flts[in.A] = a2.Flts[ix]
				} else {
					flts[in.A] = float64(a2.Ints[ix])
				}
			case opOffStoreI:
				if a2.Float {
					a2.Flts[ix] = float64(ints[in.A])
				} else {
					a2.Ints[ix] = ints[in.A]
				}
			default:
				if a2.Float {
					a2.Flts[ix] = flts[in.A]
				} else {
					a2.Ints[ix] = int64(flts[in.A])
				}
			}

		case opAIdx0:
			a := fr.arrs[in.B]
			if a == nil {
				throwf("%s", bf.strs[in.Aux])
			}
			if in.C < 0 {
				// Nil-only probe: the tree walker checks the array exists
				// before evaluating subscripts, but ranks and bounds only
				// after all of them evaluated.
				continue
			}
			if int64(len(a.Dims)) != in.K {
				throwf("interp: array %s indexed with %d subscripts, has %d dims", a.Name, in.K, len(a.Dims))
			}
			ix := ints[in.C]
			if ix < 0 || ix >= a.Dims[0] {
				throwf("interp: array %s index %d out of range [0,%d) in dim 0", a.Name, ix, a.Dims[0])
			}
			ints[in.A] = ix
		case opAIdxN:
			a := fr.arrs[in.B]
			d := in.K
			ix := ints[in.C]
			if ix < 0 || ix >= a.Dims[d] {
				throwf("interp: array %s index %d out of range [0,%d) in dim %d", a.Name, ix, a.Dims[d], d)
			}
			ints[in.A] = ints[in.A]*a.Dims[d] + ix
		case opAIdx01:
			a := fr.arrs[in.B]
			if a == nil {
				throwf("%s", bf.strs[in.Aux])
			}
			rank := in.K >> 32
			if int64(len(a.Dims)) != rank {
				throwf("interp: array %s indexed with %d subscripts, has %d dims", a.Name, rank, len(a.Dims))
			}
			i0 := ints[in.C]
			if i0 < 0 || i0 >= a.Dims[0] {
				throwf("interp: array %s index %d out of range [0,%d) in dim 0", a.Name, i0, a.Dims[0])
			}
			i1 := ints[int32(uint32(in.K))]
			if i1 < 0 || i1 >= a.Dims[1] {
				throwf("interp: array %s index %d out of range [0,%d) in dim 1", a.Name, i1, a.Dims[1])
			}
			ints[in.A] = i0*a.Dims[1] + i1
		case opAIdxNN:
			a := fr.arrs[in.B]
			d := in.K
			i0 := ints[in.C]
			if i0 < 0 || i0 >= a.Dims[d] {
				throwf("interp: array %s index %d out of range [0,%d) in dim %d", a.Name, i0, a.Dims[d], d)
			}
			off := ints[in.A]*a.Dims[d] + i0
			i1 := ints[in.Aux]
			if i1 < 0 || i1 >= a.Dims[d+1] {
				throwf("interp: array %s index %d out of range [0,%d) in dim %d", a.Name, i1, a.Dims[d+1], d+1)
			}
			ints[in.A] = off*a.Dims[d+1] + i1
		case opALoadI:
			a := fr.arrs[in.B]
			if a.Float {
				ints[in.A] = int64(a.Flts[ints[in.C]])
			} else {
				ints[in.A] = a.Ints[ints[in.C]]
			}
		case opALoadF:
			a := fr.arrs[in.B]
			if a.Float {
				flts[in.A] = a.Flts[ints[in.C]]
			} else {
				flts[in.A] = float64(a.Ints[ints[in.C]])
			}
		case opAStoreI:
			a := fr.arrs[in.B]
			if a.Float {
				a.Flts[ints[in.C]] = float64(ints[in.A])
			} else {
				a.Ints[ints[in.C]] = ints[in.A]
			}
		case opAStoreF:
			a := fr.arrs[in.B]
			if a.Float {
				a.Flts[ints[in.C]] = flts[in.A]
			} else {
				a.Ints[ints[in.C]] = int64(flts[in.A])
			}
		case opAUpdI:
			a, off := fr.arrs[in.B], ints[in.C]
			if a.Float {
				a.Flts[off] = vmFloatCombine(in.K, a.Flts[off], float64(ints[in.A]))
			} else {
				a.Ints[off] = vmIntCombine(in.K, a.Ints[off], ints[in.A])
			}
		case opAUpdF:
			a, off := fr.arrs[in.B], ints[in.C]
			if a.Float {
				a.Flts[off] = vmFloatCombine(in.K, a.Flts[off], flts[in.A])
			} else {
				a.Ints[off] = int64(vmFloatCombine(in.K, float64(a.Ints[off]), flts[in.A]))
			}

		case opANew:
			dims := make([]int64, in.K)
			for i := range dims {
				dims[i] = ints[in.B+int32(i)]
			}
			name := bf.strs[in.Aux]
			if in.C != 0 {
				fr.arrs[in.A] = NewFloatArray(name, dims...)
			} else {
				fr.arrs[in.A] = NewIntArray(name, dims...)
			}
		case opACheck:
			if fr.arrs[in.B] == nil {
				throwf("%s", bf.strs[in.Aux])
			}

		case opAbs:
			ints[in.A] = int64(math.Abs(flts[in.B]))
		case opB1:
			flts[in.A] = bf.b1[in.Aux](flts[in.B])
		case opB2:
			flts[in.A] = bf.b2[in.Aux](flts[in.B], flts[in.C])

		case opCallU:
			// Flush the partial quantum before recursing: the callee
			// meters its own segment from scratch, so without this an
			// unbounded call chain whose frames each execute fewer than
			// vmQuantum instructions would never bill the budget (and
			// recurse until the goroutine stack blows).
			if n := vmQuantum - meter; n > 0 {
				b.Step(int64(n))
			}
			meter = vmQuantum
			c := &bf.calls[in.Aux]
			cal := c.callee.newFrame()
			c.callee.bindEntry(cal, m)
			for _, bd := range c.binds {
				switch bd.kind {
				case psArr:
					cal.arrs[bd.dst] = fr.arrs[bd.src]
				case psFlt:
					cal.flts[bd.dst] = flts[bd.src]
				default:
					cal.ints[bd.dst] = ints[bd.src]
				}
			}
			cal.ret = Value{}
			m.runSeg(c.callee, cal, 0)
			ret := cal.ret
			c.callee.release(cal)
			if c.retFloat {
				f := ret.AsFloat()
				if in.K != 0 {
					flts[in.A] = f
				} else {
					ints[in.A] = int64(f)
				}
			} else {
				i := ret.AsInt()
				if in.K != 0 {
					flts[in.A] = float64(i)
				} else {
					ints[in.A] = i
				}
			}

		case opRetV:
			fr.ret = Value{}
			return ctlReturn
		case opRetI:
			fr.ret = IntVal(ints[in.A])
			return ctlReturn
		case opRetF:
			fr.ret = FloatVal(flts[in.A])
			return ctlReturn
		case opIterEnd:
			return ctlNext
		case opIterBrk:
			return ctlBreak
		case opIterCnt:
			return ctlContinue
		case opIterRet:
			return ctlReturn

		case opEdge:
			m.interruptCompiled()

		case opJNoPar:
			if m.Workers <= 1 {
				pc = in.A
			}
		case opFall:
			m.Stats.RuntimeFallback++
		case opParEnter:
			m.Stats.ParallelRegions++
		case opPar:
			ints[in.A] = int64(m.runPar(bf, fr, in))

		case opErr:
			throwf("%s", bf.strs[in.Aux])

		default:
			throwf("interp: bad opcode %d at pc %d", in.Op, pc-1)
		}
	}
}

// vmWorkerFrame clones the parent frame into a pooled worker frame:
// shared scalars and arrays copy through; privatized cells and reduction
// slots get worker-private storage seeded with the reduction identity.
// Mirrors cparloop.setup.
func vmWorkerFrame(bf *bfunc, parent *frame, pl *vparloop) *frame {
	wfr := bf.newFrame()
	copy(wfr.ints, parent.ints)
	copy(wfr.flts, parent.flts)
	copy(wfr.cells, parent.cells)
	copy(wfr.arrs, parent.arrs)
	if pl.ivarCell {
		wfr.cells[pl.ivarSlot] = &Value{}
	}
	for _, p := range pl.privs {
		if p.kind == pkCell {
			wfr.cells[p.slot] = &Value{Float: p.float}
		}
	}
	for _, r := range pl.reds {
		ident := int64(0)
		if r.op == "*" {
			ident = 1
		}
		switch r.kind {
		case pkLocalInt:
			wfr.ints[r.slot] = ident
		case pkLocalFlt:
			wfr.flts[r.slot] = float64(ident)
		case pkCell:
			c := &Value{Float: r.float}
			if r.float {
				c.F = float64(ident)
			} else {
				c.I = ident
			}
			wfr.cells[r.slot] = c
		}
	}
	wfr.ret = Value{}
	return wfr
}

// runPar executes one chosen parallel loop on the VM, fanning the
// iteration space out over sched.ParallelLoop. Chunking, per-chunk
// private resets, reduction identities, and the worker-order error scan
// and reduction combines mirror cparloop.run exactly, so all three
// engines produce bit-identical results at equal worker counts.
func (m *Machine) runPar(bf *bfunc, parent *frame, in *Instr) control {
	pl := &bf.pars[in.Aux]
	n := parent.ints[in.B]
	if n <= 0 {
		return ctlNext
	}
	workers := m.Workers
	if int64(workers) > n {
		workers = int(n)
	}
	frames := make([]*frame, workers)
	errs := make([]error, workers)
	ctls := make([]control, workers)

	runChunk := func(wfr *frame, start, end int64) control {
		for _, p := range pl.privs {
			switch p.kind {
			case pkLocalInt:
				wfr.ints[p.slot] = 0
			case pkLocalFlt:
				wfr.flts[p.slot] = 0
			case pkCell:
				c := wfr.cells[p.slot]
				c.I, c.F = 0, 0
			}
		}
		if pl.ivarCell {
			c := wfr.cells[pl.ivarSlot]
			for it := start; it < end; it++ {
				m.interruptCompiled()
				c.I = it
				if ctl := m.runSeg(bf, wfr, pl.bodyPC); ctl != ctlNext {
					return ctl
				}
			}
			return ctlNext
		}
		ivar := pl.ivarSlot
		for it := start; it < end; it++ {
			m.interruptCompiled()
			wfr.ints[ivar] = it
			if ctl := m.runSeg(bf, wfr, pl.bodyPC); ctl != ctlNext {
				return ctl
			}
		}
		return ctlNext
	}

	sched.ParallelLoop(n, workers, m.DynamicChunk,
		func(w int) { frames[w] = vmWorkerFrame(bf, parent, pl) },
		func(w int, start, end int64) (cont bool) {
			defer func() {
				if r := recover(); r != nil {
					switch e := r.(type) {
					case engineErr:
						errs[w] = e.err
					case budget.Abort:
						errs[w] = e.Err
					default:
						panic(r)
					}
					cont = false
				}
			}()
			if ctl := runChunk(frames[w], start, end); ctl != ctlNext {
				ctls[w] = ctl
				return false
			}
			return true
		})

	release := func() {
		for _, wfr := range frames {
			if wfr != nil {
				bf.release(wfr)
			}
		}
	}
	// Anomalies propagate in worker order before reductions combine,
	// matching the other engines' error scan.
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			err := errs[w]
			release()
			panic(engineErr{err})
		}
		if ctls[w] != ctlNext {
			ctl := ctls[w]
			if ctl == ctlReturn {
				parent.ret = frames[w].ret
			}
			release()
			return ctl
		}
	}
	// Combine reductions deterministically in worker order.
	for _, r := range pl.reds {
		for w := 0; w < workers; w++ {
			wfr := frames[w]
			if wfr == nil {
				continue
			}
			switch r.kind {
			case pkLocalInt:
				parent.ints[r.slot] = intCombine(r.op)(parent.ints[r.slot], wfr.ints[r.slot])
			case pkLocalFlt:
				parent.flts[r.slot] = floatCombine(r.op)(parent.flts[r.slot], wfr.flts[r.slot])
			case pkCell:
				target, cell := parent.cells[r.slot], wfr.cells[r.slot]
				if r.float {
					target.F = floatCombine(r.op)(target.F, cell.F)
				} else {
					target.I = intCombine(r.op)(target.I, cell.I)
				}
			}
		}
	}
	// The loop variable's final value (locals only — the tree walker's
	// env lookup misses globals here, so the cell form skips it too).
	if !pl.ivarCell {
		parent.ints[pl.ivarSlot] = n
	}
	release()
	return ctlNext
}
