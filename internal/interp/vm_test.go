package interp

import (
	"context"
	"errors"
	"testing"

	"repro/internal/budget"
	"repro/internal/trace"
)

// TestUnknownEngineError: satellite regression test for engine-selection
// hardening — an unknown Machine.Interp is rejected with the available
// engine list, so a typo'd -engine flag fails loudly instead of
// silently falling back.
func TestUnknownEngineError(t *testing.T) {
	m := machineFor(t, `int g; void f(int n) { g = n; }`, "llvm")
	err := m.Call("f", 1)
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	want := `interp: unknown engine "llvm" (available: compiled, vm, tree)`
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err, want)
	}
}

// TestVMBudgetExhaustion: the VM bills one Step(vmQuantum) per quantum
// of executed instructions, so an exhausted budget aborts within one
// metering quantum of the limit — and at exactly the same instruction
// every run (deterministic abort point).
func TestVMBudgetExhaustion(t *testing.T) {
	src := `
void spin(int n) {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < n; i++) { acc = acc + i; }
}
`
	const limit = 4096
	run := func() (error, int64) {
		m := machineFor(t, src, "vm")
		m.Budget = budget.New(context.Background(), limit)
		err := m.Call("spin", 1<<30)
		return err, m.Budget.Steps()
	}
	err1, steps1 := run()
	if !errors.Is(err1, budget.ErrBudget) {
		t.Fatalf("err = %v, want budget.ErrBudget", err1)
	}
	if steps1 > limit+vmQuantum {
		t.Fatalf("billed %d steps before aborting, want <= limit+quantum = %d", steps1, limit+vmQuantum)
	}
	err2, steps2 := run()
	if !errors.Is(err2, budget.ErrBudget) {
		t.Fatalf("second run: err = %v, want budget.ErrBudget", err2)
	}
	if steps2 != steps1 {
		t.Fatalf("abort point not deterministic: %d vs %d billed steps", steps1, steps2)
	}

	// The tree and compiled engines do not consume the budget: the same
	// machine budget survives a full run untouched.
	for _, eng := range []string{"tree", "compiled"} {
		m := machineFor(t, src, eng)
		m.Budget = budget.New(context.Background(), limit)
		if err := m.Call("spin", 1000); err != nil {
			t.Fatalf("engine %q: %v", eng, err)
		}
		if got := m.Budget.Steps(); got != 0 {
			t.Fatalf("engine %q billed %d steps, want 0", eng, got)
		}
	}
}

// TestVMSteadyStateAllocs: after the bytecode is compiled and the frame
// pool is warm, a serial VM call allocates nothing — values live in
// typed columns indexed by compile-time slots, so the dispatch loop
// never boxes.
func TestVMSteadyStateAllocs(t *testing.T) {
	src := `
void kernel(int a[], int n) {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < n; i++) {
		acc = acc + a[i];
		a[i] = acc % 1024;
	}
}
`
	m := machineFor(t, src, "vm")
	a := NewIntArray("a", 256)
	// Pre-boxed argument slice: the steady-state claim is about the VM,
	// not about the host's interface conversions at the Call boundary.
	args := []Arg{a, 255}
	for i := 0; i < 3; i++ {
		if err := m.Call("kernel", args...); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := m.Call("kernel", args...); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("vm Call allocates %.1f allocs/run at steady state, want 0", avg)
	}
}

// TestVMTraceSpans: with a recording tracer the VM attributes bytecode
// compilation to a compile-bc span and execution to an exec-vm span.
func TestVMTraceSpans(t *testing.T) {
	m := machineFor(t, `int g; void f(int n) { g = n * 2; }`, "vm")
	m.Trace = trace.NewRecorder()
	if err := m.Call("f", 21); err != nil {
		t.Fatal(err)
	}
	if got := m.Globals["g"].AsInt(); got != 42 {
		t.Fatalf("g = %d, want 42", got)
	}
	stages := map[string]int{}
	for _, sp := range m.Trace.Spans() {
		stages[sp.Stage]++
	}
	if stages["compile-bc"] != 1 || stages["exec-vm"] != 1 {
		t.Fatalf("spans = %v, want one compile-bc and one exec-vm", stages)
	}
	// The bytecode cache is keyed on the plan: a second call must not
	// recompile.
	if err := m.Call("f", 21); err != nil {
		t.Fatal(err)
	}
	stages = map[string]int{}
	for _, sp := range m.Trace.Spans() {
		stages[sp.Stage]++
	}
	if stages["compile-bc"] != 1 || stages["exec-vm"] != 2 {
		t.Fatalf("after second call spans = %v, want compile-bc:1 exec-vm:2", stages)
	}
}
