package interp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cminus"
	"repro/internal/parallelize"
	"repro/internal/phase2"
)

const amgProgram = `
void fill(int num_rows, int *A_i, int *A_rownnz, int *nnz_count) {
    int irownnz = 0;
    int i, adiag;
    for (i = 0; i < num_rows; i++) {
        adiag = A_i[i+1] - A_i[i];
        if (adiag > 0)
            A_rownnz[irownnz++] = i;
    }
    nnz_count[0] = irownnz;
}
void kernel(int num_rownnz, int irownnz_max, int *A_rownnz, int *A_i, int *A_j,
            double *A_data, double *x_data, double *y_data) {
    int i, jj, m;
    double tempx;
    for (i = 0; i < num_rownnz; i++) {
        m = A_rownnz[i];
        tempx = y_data[m];
        for (jj = A_i[m]; jj < A_i[m+1]; jj++)
            tempx += A_data[jj] * x_data[A_j[jj]];
        y_data[m] = tempx;
    }
}
`

// buildCSR builds a random CSR matrix with some empty rows.
func buildCSR(rng *rand.Rand, n int) (ai []int64, aj []int64, ad []float64) {
	ai = make([]int64, n+1)
	for i := 0; i < n; i++ {
		row := 0
		if rng.Intn(4) != 0 { // 25% empty rows
			row = 1 + rng.Intn(5)
		}
		for c := 0; c < row; c++ {
			aj = append(aj, int64(rng.Intn(n)))
			ad = append(ad, rng.Float64())
		}
		ai[i+1] = int64(len(aj))
	}
	return ai, aj, ad
}

// runAMG runs fill+kernel under a machine configuration and returns y.
func runAMG(t *testing.T, plan *parallelize.Plan, workers int, seed int64, n int) *Array {
	t.Helper()
	var prog *cminus.Program
	if plan != nil {
		prog = plan.Program()
	} else {
		prog = cminus.MustParse(amgProgram)
	}
	m, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	m.Plan = plan
	m.Workers = workers

	rng := rand.New(rand.NewSource(seed))
	ai, aj, ad := buildCSR(rng, n)
	aiArr := NewIntArray("A_i", int64(len(ai)))
	copy(aiArr.Ints, ai)
	ajArr := NewIntArray("A_j", int64(max64(1, int64(len(aj)))))
	copy(ajArr.Ints, aj)
	adArr := NewFloatArray("A_data", int64(max64(1, int64(len(ad)))))
	copy(adArr.Flts, ad)
	rownnz := NewIntArray("A_rownnz", int64(n))
	count := NewIntArray("nnz_count", 1)
	x := NewFloatArray("x_data", int64(n))
	y := NewFloatArray("y_data", int64(n))
	for i := 0; i < n; i++ {
		x.Flts[i] = rng.Float64()
		y.Flts[i] = rng.Float64()
	}

	if err := m.Call("fill", int64(n), aiArr, rownnz, count); err != nil {
		t.Fatal(err)
	}
	numRownnz := count.Ints[0]
	if err := m.Call("kernel", numRownnz, numRownnz, rownnz, aiArr, ajArr, adArr, x, y); err != nil {
		t.Fatal(err)
	}
	return y
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestAMGSerialVsParallel: the plan-parallelized AMG kernel must produce
// the same result as serial execution — the soundness statement of the
// whole analysis.
func TestAMGSerialVsParallel(t *testing.T) {
	prog := cminus.MustParse(amgProgram)
	plan := parallelize.Run(prog, phase2.LevelNew, nil)
	serial := runAMG(t, nil, 1, 42, 200)
	par := runAMG(t, plan, 4, 42, 200)
	if d := MaxAbsDiff(serial, par); d > 1e-9 {
		t.Errorf("parallel result differs from serial by %g", d)
	}
}

// TestQuickAMGSoundness: property-based soundness over random matrices.
func TestQuickAMGSoundness(t *testing.T) {
	prog := cminus.MustParse(amgProgram)
	plan := parallelize.Run(prog, phase2.LevelNew, nil)
	f := func(seed int64) bool {
		n := 20 + int(seed%57+57)%57
		serial := runAMG(t, nil, 1, seed, n)
		par := runAMG(t, plan, 3, seed, n)
		return MaxAbsDiff(serial, par) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestParallelRegionCounted: the machine actually ran a parallel region
// (not the serial fallback).
func TestParallelRegionCounted(t *testing.T) {
	prog := cminus.MustParse(amgProgram)
	plan := parallelize.Run(prog, phase2.LevelNew, nil)
	m, err := New(plan.Program())
	if err != nil {
		t.Fatal(err)
	}
	m.Plan = plan
	m.Workers = 2
	n := 50
	rng := rand.New(rand.NewSource(7))
	ai, aj, ad := buildCSR(rng, n)
	aiArr := NewIntArray("A_i", int64(len(ai)))
	copy(aiArr.Ints, ai)
	ajArr := NewIntArray("A_j", int64(max64(1, int64(len(aj)))))
	copy(ajArr.Ints, aj)
	adArr := NewFloatArray("A_data", int64(max64(1, int64(len(ad)))))
	copy(adArr.Flts, ad)
	rownnz := NewIntArray("A_rownnz", int64(n))
	count := NewIntArray("nnz_count", 1)
	x := NewFloatArray("x_data", int64(n))
	y := NewFloatArray("y_data", int64(n))
	if err := m.Call("fill", int64(n), aiArr, rownnz, count); err != nil {
		t.Fatal(err)
	}
	nr := count.Ints[0]
	if err := m.Call("kernel", nr, nr, rownnz, aiArr, ajArr, adArr, x, y); err != nil {
		t.Fatal(err)
	}
	if m.Stats.ParallelRegions == 0 {
		t.Error("expected a parallel region to run")
	}
}

// TestRuntimeCheckFallback: violating the runtime check (num_rownnz >
// irownnz_max) must fall back to serial execution, not crash or corrupt.
func TestRuntimeCheckFallback(t *testing.T) {
	prog := cminus.MustParse(amgProgram)
	plan := parallelize.Run(prog, phase2.LevelNew, nil)
	m, err := New(plan.Program())
	if err != nil {
		t.Fatal(err)
	}
	m.Plan = plan
	m.Workers = 4
	n := 30
	rng := rand.New(rand.NewSource(11))
	ai, aj, ad := buildCSR(rng, n)
	aiArr := NewIntArray("A_i", int64(len(ai)))
	copy(aiArr.Ints, ai)
	ajArr := NewIntArray("A_j", int64(max64(1, int64(len(aj)))))
	copy(ajArr.Ints, aj)
	adArr := NewFloatArray("A_data", int64(max64(1, int64(len(ad)))))
	copy(adArr.Flts, ad)
	rownnz := NewIntArray("A_rownnz", int64(n))
	count := NewIntArray("nnz_count", 1)
	x := NewFloatArray("x_data", int64(n))
	y := NewFloatArray("y_data", int64(n))
	if err := m.Call("fill", int64(n), aiArr, rownnz, count); err != nil {
		t.Fatal(err)
	}
	nr := count.Ints[0]
	// Pass irownnz_max = 0: the check -1+num_rownnz <= 0 fails for nr > 1.
	if nr <= 1 {
		t.Skip("degenerate matrix")
	}
	if err := m.Call("kernel", nr, int64(0), rownnz, aiArr, ajArr, adArr, x, y); err != nil {
		t.Fatal(err)
	}
	if m.Stats.RuntimeFallback == 0 {
		t.Error("expected runtime-check fallback")
	}
	if m.Stats.ParallelRegions != 0 {
		t.Error("no parallel region should have run")
	}
}

// TestReductionParallel: a scalar + reduction combines correctly across
// workers.
func TestReductionParallel(t *testing.T) {
	src := `
void sum(int n, double *a, double *out) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s += a[i];
    }
    out[0] = s;
}
`
	prog := cminus.MustParse(src)
	plan := parallelize.Run(prog, phase2.LevelClassical, nil)
	// The loop must be recognized as a reduction and parallelized.
	var chosen bool
	for _, lp := range plan.Funcs["sum"].Loops {
		if lp.Chosen && lp.Decision.Reductions["s"] == "+" {
			chosen = true
		}
	}
	if !chosen {
		t.Fatalf("sum loop should be a parallel reduction: %s", plan.Summary())
	}
	m, err := New(plan.Program())
	if err != nil {
		t.Fatal(err)
	}
	m.Plan = plan
	m.Workers = 4
	n := int64(1000)
	a := NewFloatArray("a", n)
	var want float64
	for i := range a.Flts {
		a.Flts[i] = float64(i%13) * 0.5
		want += a.Flts[i]
	}
	out := NewFloatArray("out", 1)
	if err := m.Call("sum", n, a, out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Flts[0]-want) > 1e-6 {
		t.Errorf("sum = %g, want %g", out.Flts[0], want)
	}
}

// TestDynamicScheduling: dynamic chunking produces the same results.
func TestDynamicScheduling(t *testing.T) {
	prog := cminus.MustParse(amgProgram)
	plan := parallelize.Run(prog, phase2.LevelNew, nil)
	serial := runAMG(t, nil, 1, 99, 150)
	m := func() *Array {
		mach, err := New(plan.Program())
		if err != nil {
			t.Fatal(err)
		}
		mach.Plan = plan
		mach.Workers = 4
		mach.DynamicChunk = 8
		rng := rand.New(rand.NewSource(99))
		n := 150
		ai, aj, ad := buildCSR(rng, n)
		aiArr := NewIntArray("A_i", int64(len(ai)))
		copy(aiArr.Ints, ai)
		ajArr := NewIntArray("A_j", int64(max64(1, int64(len(aj)))))
		copy(ajArr.Ints, aj)
		adArr := NewFloatArray("A_data", int64(max64(1, int64(len(ad)))))
		copy(adArr.Flts, ad)
		rownnz := NewIntArray("A_rownnz", int64(n))
		count := NewIntArray("nnz_count", 1)
		x := NewFloatArray("x_data", int64(n))
		y := NewFloatArray("y_data", int64(n))
		for i := 0; i < n; i++ {
			x.Flts[i] = rng.Float64()
			y.Flts[i] = rng.Float64()
		}
		if err := mach.Call("fill", int64(n), aiArr, rownnz, count); err != nil {
			t.Fatal(err)
		}
		nr := count.Ints[0]
		if err := mach.Call("kernel", nr, nr, rownnz, aiArr, ajArr, adArr, x, y); err != nil {
			t.Fatal(err)
		}
		return y
	}()
	if d := MaxAbsDiff(serial, m); d > 1e-9 {
		t.Errorf("dynamic parallel differs from serial by %g", d)
	}
}

// TestBasicExecution exercises the interpreter core: arithmetic, control
// flow, math builtins.
func TestBasicExecution(t *testing.T) {
	src := `
void f(int n, double *out) {
    int i;
    double acc;
    acc = 0.0;
    for (i = 0; i < n; i++) {
        if (i % 2 == 0) {
            acc += sqrt((double)(i));
        } else {
            acc -= 1.0;
        }
    }
    out[0] = acc;
    out[1] = pow(2.0, 10.0);
    out[2] = fabs(-3.5);
}
`
	prog := cminus.MustParse(src)
	m, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	out := NewFloatArray("out", 3)
	if err := m.Call("f", int64(10), out); err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			want += math.Sqrt(float64(i))
		} else {
			want -= 1
		}
	}
	if math.Abs(out.Flts[0]-want) > 1e-12 {
		t.Errorf("acc = %g, want %g", out.Flts[0], want)
	}
	if out.Flts[1] != 1024 || out.Flts[2] != 3.5 {
		t.Errorf("builtins: %v", out.Flts)
	}
}

// TestOutOfBoundsCaught: bad subscripts produce errors, not corruption.
func TestOutOfBoundsCaught(t *testing.T) {
	src := `void f(int *a) { a[5] = 1; }`
	prog := cminus.MustParse(src)
	m, _ := New(prog)
	a := NewIntArray("a", 3)
	if err := m.Call("f", a); err == nil {
		t.Error("expected out-of-range error")
	}
}

// TestWhileAndBreak.
func TestWhileAndBreak(t *testing.T) {
	src := `
void f(int *out) {
    int i;
    i = 0;
    while (i < 100) {
        i = i + 1;
        if (i == 7) {
            break;
        }
    }
    out[0] = i;
}
`
	prog := cminus.MustParse(src)
	m, _ := New(prog)
	out := NewIntArray("out", 1)
	if err := m.Call("f", out); err != nil {
		t.Fatal(err)
	}
	if out.Ints[0] != 7 {
		t.Errorf("got %d", out.Ints[0])
	}
}

// TestGlobals: global scalars and arrays work.
func TestGlobals(t *testing.T) {
	src := `
int counter = 3;
int table[4];
void f(void) {
    counter = counter + 1;
    table[counter - 4] = counter;
}
`
	prog := cminus.MustParse(src)
	m, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Call("f"); err != nil {
		t.Fatal(err)
	}
	if m.Globals["counter"].I != 4 {
		t.Errorf("counter = %v", m.Globals["counter"])
	}
	if m.Arrays["table"].Ints[0] != 4 {
		t.Errorf("table = %v", m.Arrays["table"].Ints)
	}
}
