package interp

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/budget"
	"repro/internal/cminus"
	"repro/internal/parallelize"
	"repro/internal/trace"
)

// Machine executes a mini-C program.
type Machine struct {
	Prog *cminus.Program
	// Plan optionally enables parallel execution of chosen loops. When
	// nil every loop runs serially.
	Plan *parallelize.Plan
	// Workers is the number of goroutines for parallel loops (>=1).
	Workers int
	// DynamicChunk, when > 0, uses dynamic scheduling with the given
	// chunk size instead of static chunking.
	DynamicChunk int
	// Interp selects the execution engine: "" or "compiled" for the
	// slot-resolved closure engine (default), "vm" for the bytecode
	// machine, "tree" for the original tree-walking oracle. Unknown
	// names are rejected by Call with the available-engine list.
	Interp string
	// Budget, when non-nil, meters VM execution: the bytecode dispatch
	// loop bills one Step per vmQuantum instructions, so an exhausted
	// step budget aborts the run (Call returns an error wrapping
	// budget.ErrBudget) within one quantum. The tree and compiled
	// engines do not consume it.
	Budget *budget.B
	// Trace, when recording, receives compile-bc spans for bytecode
	// compilation and exec-vm spans for VM runs. Nil-safe.
	Trace *trace.Recorder
	// Ctx cancels a running program: both engines poll it at loop back
	// edges (every 1024 edges machine-wide) and abort with an error
	// wrapping budget.ErrCanceled. Nil means non-cancellable.
	Ctx context.Context
	// edges counts loop back edges since machine creation; shared across
	// parallel workers, so polling stays one atomic add per edge.
	edges atomic.Int64
	// Globals holds global scalars.
	Globals map[string]*Value
	// Arrays holds all arrays (global or passed in by the host).
	Arrays map[string]*Array
	// Stats counts executed parallel regions and fallbacks.
	Stats Stats
	// retVal carries the value of the innermost executing return.
	retVal Value
	// comp caches the compiled program; invalidated when Plan changes.
	comp *compiledProgram
	// bc caches the bytecode program; invalidated when Plan changes.
	bc *bytecodeProgram
	// arrShadows scopes m.Arrays bindings (parameter arrays, local
	// array declarations) to the call that made them, so repeated or
	// nested calls never leak bindings into the global namespace.
	arrShadows []arrShadow
	// callMark is the arrShadows watermark of the innermost call,
	// used to avoid shadow-stack growth for rebinds within one call.
	callMark int
}

// arrShadow records one scoped m.Arrays binding for undo.
type arrShadow struct {
	name string
	prev *Array
	had  bool
}

// bindArray installs a call-scoped array binding. The previous binding
// (if any) is recorded once per call so restoreArrays can undo it.
func (m *Machine) bindArray(name string, a *Array) {
	for i := len(m.arrShadows) - 1; i >= m.callMark; i-- {
		if m.arrShadows[i].name == name {
			m.Arrays[name] = a
			return
		}
	}
	prev, had := m.Arrays[name]
	m.arrShadows = append(m.arrShadows, arrShadow{name: name, prev: prev, had: had})
	m.Arrays[name] = a
}

// restoreArrays unwinds scoped bindings down to the given watermark.
func (m *Machine) restoreArrays(mark int) {
	for i := len(m.arrShadows) - 1; i >= mark; i-- {
		sh := m.arrShadows[i]
		if sh.had {
			m.Arrays[sh.name] = sh.prev
		} else {
			delete(m.Arrays, sh.name)
		}
	}
	m.arrShadows = m.arrShadows[:mark]
}

// Stats records execution events for tests and reports.
type Stats struct {
	ParallelRegions int
	RuntimeFallback int
}

// env is a scalar scope chain.
type env struct {
	vars   map[string]*Value
	parent *env
}

func (e *env) lookup(name string) *Value {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v
		}
	}
	return nil
}

func (e *env) define(name string, v Value) {
	e.vars[name] = &Value{I: v.I, F: v.F, Float: v.Float}
}

// New builds a machine for a program. Global declarations are evaluated.
func New(prog *cminus.Program) (*Machine, error) {
	m := &Machine{
		Prog:    prog,
		Workers: 1,
		Globals: map[string]*Value{},
		Arrays:  map[string]*Array{},
	}
	for _, g := range prog.Globals {
		isFloat := cminus.IsFloatType(g.Type)
		for _, it := range g.Items {
			if len(it.Dims) > 0 {
				dims := make([]int64, len(it.Dims))
				for i, d := range it.Dims {
					v, err := m.evalIn(nil, d)
					if err != nil {
						return nil, err
					}
					dims[i] = v.AsInt()
				}
				if isFloat {
					m.Arrays[it.Name] = NewFloatArray(it.Name, dims...)
				} else {
					m.Arrays[it.Name] = NewIntArray(it.Name, dims...)
				}
				continue
			}
			val := Value{Float: isFloat}
			if it.Init != nil {
				v, err := m.evalIn(nil, it.Init)
				if err != nil {
					return nil, err
				}
				val = convert(v, isFloat)
			}
			m.Globals[it.Name] = &val
		}
	}
	return m, nil
}

func convert(v Value, toFloat bool) Value {
	if toFloat {
		return FloatVal(v.AsFloat())
	}
	return IntVal(v.AsInt())
}

// Arg is an argument to Call: a scalar Value or an *Array.
type Arg interface{}

// Call executes the named function with the given arguments on the
// engine selected by Interp ("" / "compiled" for the slot-resolved
// closure engine, "tree" for the tree-walking oracle).
func (m *Machine) Call(name string, args ...Arg) error {
	switch m.Interp {
	case "", "compiled":
		return m.callCompiled(name, args)
	case "vm":
		return m.callVM(name, args)
	case "tree":
		return m.callTree(name, args)
	}
	return fmt.Errorf("interp: unknown engine %q (available: %s)",
		m.Interp, strings.Join(Engines(), ", "))
}

// Engines lists the selectable execution engines, default first. The
// empty string is accepted as an alias for "compiled".
func Engines() []string { return []string{"compiled", "vm", "tree"} }

// Precompile validates the selected engine and forces its compilation
// pipeline over the whole program, so engine typos and code-generation
// problems surface before the first Call. The tree engine has no
// compilation step; unknown engines are rejected with the same error as
// Call. This is the interpreter smoke path behind the subsubcc -engine
// flag.
func (m *Machine) Precompile() error {
	switch m.Interp {
	case "", "compiled":
		m.ensureCompiled()
	case "vm":
		m.ensureBytecode()
	case "tree":
	default:
		return fmt.Errorf("interp: unknown engine %q (available: %s)",
			m.Interp, strings.Join(Engines(), ", "))
	}
	return nil
}

// callTree is Machine.Call on the tree-walking oracle.
func (m *Machine) callTree(name string, args []Arg) error {
	fn := m.Prog.Func(name)
	if fn == nil || fn.Body == nil {
		return fmt.Errorf("interp: no function %q", name)
	}
	if len(args) != len(fn.Params) {
		return fmt.Errorf("interp: %s expects %d args, got %d", name, len(fn.Params), len(args))
	}
	mark := len(m.arrShadows)
	prevMark := m.callMark
	m.callMark = mark
	defer func() {
		m.restoreArrays(mark)
		m.callMark = prevMark
	}()
	e := &env{vars: map[string]*Value{}}
	for i, prm := range fn.Params {
		switch a := args[i].(type) {
		case *Array:
			// Bind by reference under the parameter name, scoped to
			// this call.
			m.bindArray(prm.Name, a)
		case Value:
			e.define(prm.Name, convert(a, cminus.IsFloatType(prm.Type)))
		case int:
			e.define(prm.Name, IntVal(int64(a)))
		case int64:
			e.define(prm.Name, IntVal(a))
		case float64:
			e.define(prm.Name, FloatVal(a))
		default:
			return fmt.Errorf("interp: unsupported argument %T", args[i])
		}
	}
	err := m.execBlock(fn.Body, e, m.funcPlan(name))
	if err == errReturn {
		// A top-level return is a normal completion of the call.
		err = nil
	}
	return err
}

// funcPlan is a nil-safe accessor.
func (m *Machine) funcPlan(name string) *parallelize.FuncPlan {
	if m.Plan == nil {
		return nil
	}
	return m.Plan.Funcs[name]
}

func (m *Machine) execBlock(blk *cminus.Block, e *env, fp *parallelize.FuncPlan) error {
	for _, s := range blk.Stmts {
		if err := m.execStmt(s, e, fp); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) execStmt(s cminus.Stmt, e *env, fp *parallelize.FuncPlan) error {
	switch x := s.(type) {
	case *cminus.DeclStmt:
		isFloat := cminus.IsFloatType(x.Type)
		for _, it := range x.Items {
			if len(it.Dims) > 0 {
				dims := make([]int64, len(it.Dims))
				for i, d := range it.Dims {
					v, err := m.eval(d, e)
					if err != nil {
						return err
					}
					dims[i] = v.AsInt()
				}
				if isFloat {
					m.bindArray(it.Name, NewFloatArray(it.Name, dims...))
				} else {
					m.bindArray(it.Name, NewIntArray(it.Name, dims...))
				}
				continue
			}
			val := Value{Float: isFloat}
			if it.Init != nil {
				v, err := m.eval(it.Init, e)
				if err != nil {
					return err
				}
				val = convert(v, isFloat)
			}
			e.define(it.Name, val)
		}
		return nil
	case *cminus.AssignStmt:
		return m.execAssign(x, e)
	case *cminus.ExprStmt:
		_, err := m.eval(x.X, e)
		return err
	case *cminus.IfStmt:
		c, err := m.eval(x.Cond, e)
		if err != nil {
			return err
		}
		if c.Truthy() {
			return m.execBlock(x.Then, &env{vars: map[string]*Value{}, parent: e}, fp)
		}
		if x.Else != nil {
			switch els := x.Else.(type) {
			case *cminus.Block:
				return m.execBlock(els, &env{vars: map[string]*Value{}, parent: e}, fp)
			default:
				return m.execStmt(els, e, fp)
			}
		}
		return nil
	case *cminus.ForStmt:
		return m.execFor(x, e, fp)
	case *cminus.WhileStmt:
		for {
			if err := m.interrupt(); err != nil {
				return err
			}
			c, err := m.eval(x.Cond, e)
			if err != nil {
				return err
			}
			if !c.Truthy() {
				return nil
			}
			err = m.execBlock(x.Body, &env{vars: map[string]*Value{}, parent: e}, fp)
			if err == errBreak {
				return nil
			}
			if err != nil && err != errContinue {
				return err
			}
		}
	case *cminus.Block:
		return m.execBlock(x, &env{vars: map[string]*Value{}, parent: e}, fp)
	case *cminus.ReturnStmt:
		if x.X != nil {
			v, err := m.eval(x.X, e)
			if err != nil {
				return err
			}
			m.retVal = v
		}
		return errReturn
	case *cminus.BreakStmt:
		return errBreak
	case *cminus.ContinueStmt:
		return errContinue
	}
	return nil
}

var (
	errReturn   = fmt.Errorf("return")
	errBreak    = fmt.Errorf("break")
	errContinue = fmt.Errorf("continue")
)

// backEdgeMask throttles Ctx polls to one per 1024 loop back edges.
const backEdgeMask = 1<<10 - 1

// interrupt reports a cancellation error once m.Ctx is done. Both
// engines call it at every loop back edge; with no context the cost is
// one nil check, with one it is one shared atomic add.
func (m *Machine) interrupt() error {
	if m.Ctx == nil {
		return nil
	}
	if m.edges.Add(1)&backEdgeMask != 0 {
		return nil
	}
	if m.Ctx.Err() != nil {
		return fmt.Errorf("interp: execution %w: %v", budget.ErrCanceled, context.Cause(m.Ctx))
	}
	return nil
}

// interruptCompiled is interrupt for the compiled engine, which
// propagates runtime errors by engineErr panic.
func (m *Machine) interruptCompiled() {
	if err := m.interrupt(); err != nil {
		panic(engineErr{err})
	}
}

func (m *Machine) execAssign(x *cminus.AssignStmt, e *env) error {
	rhs, err := m.eval(x.RHS, e)
	if err != nil {
		return err
	}
	switch lhs := x.LHS.(type) {
	case *cminus.Ident:
		cell := e.lookup(lhs.Name)
		if cell == nil {
			cell = m.Globals[lhs.Name]
		}
		if cell == nil {
			// Implicitly defined (normalized loop index).
			e.define(lhs.Name, rhs)
			return nil
		}
		if x.Op != "" {
			nv, err := binop(x.Op, *cell, rhs)
			if err != nil {
				return err
			}
			rhs = nv
		}
		*cell = convert(rhs, cell.Float)
		return nil
	default:
		name, idxExprs, ok := cminus.ArrayBase(x.LHS)
		if !ok {
			return fmt.Errorf("interp: unsupported assignment target at %s", x.P)
		}
		arr, found := m.Arrays[name]
		if !found {
			return fmt.Errorf("interp: unknown array %q at %s", name, x.P)
		}
		idx := make([]int64, len(idxExprs))
		for i, ie := range idxExprs {
			v, err := m.eval(ie, e)
			if err != nil {
				return err
			}
			idx[i] = v.AsInt()
		}
		if x.Op != "" {
			old, err := arr.Get(idx)
			if err != nil {
				return err
			}
			nv, err := binop(x.Op, old, rhs)
			if err != nil {
				return err
			}
			rhs = nv
		}
		return arr.Set(idx, rhs)
	}
}

// evalIn evaluates without a local scope (global initializers).
func (m *Machine) evalIn(e *env, x cminus.Expr) (Value, error) {
	if e == nil {
		e = &env{vars: map[string]*Value{}}
	}
	return m.eval(x, e)
}

func (m *Machine) eval(x cminus.Expr, e *env) (Value, error) {
	switch t := x.(type) {
	case *cminus.IntLit:
		return IntVal(t.Val), nil
	case *cminus.FloatLit:
		var f float64
		if _, err := fmt.Sscanf(t.Text, "%g", &f); err != nil {
			return Value{}, fmt.Errorf("interp: bad float %q", t.Text)
		}
		return FloatVal(f), nil
	case *cminus.StringLit:
		return IntVal(0), nil
	case *cminus.Ident:
		if cell := e.lookup(t.Name); cell != nil {
			return *cell, nil
		}
		if cell, ok := m.Globals[t.Name]; ok {
			return *cell, nil
		}
		// Counter_max symbols used by runtime checks resolve to the
		// current value of the underlying counter.
		if strings.HasSuffix(t.Name, "_max") {
			base := strings.TrimSuffix(t.Name, "_max")
			if cell := e.lookup(base); cell != nil {
				return *cell, nil
			}
			if cell, ok := m.Globals[base]; ok {
				return *cell, nil
			}
		}
		return Value{}, fmt.Errorf("interp: unbound variable %q at %s", t.Name, t.P)
	case *cminus.BinaryExpr:
		l, err := m.eval(t.X, e)
		if err != nil {
			return Value{}, err
		}
		// Short circuit.
		if t.Op == "&&" {
			if !l.Truthy() {
				return IntVal(0), nil
			}
			r, err := m.eval(t.Y, e)
			if err != nil {
				return Value{}, err
			}
			return boolVal(r.Truthy()), nil
		}
		if t.Op == "||" {
			if l.Truthy() {
				return IntVal(1), nil
			}
			r, err := m.eval(t.Y, e)
			if err != nil {
				return Value{}, err
			}
			return boolVal(r.Truthy()), nil
		}
		r, err := m.eval(t.Y, e)
		if err != nil {
			return Value{}, err
		}
		return binop(t.Op, l, r)
	case *cminus.UnaryExpr:
		switch t.Op {
		case "-":
			v, err := m.eval(t.X, e)
			if err != nil {
				return Value{}, err
			}
			if v.Float {
				return FloatVal(-v.F), nil
			}
			return IntVal(-v.I), nil
		case "!":
			v, err := m.eval(t.X, e)
			if err != nil {
				return Value{}, err
			}
			return boolVal(!v.Truthy()), nil
		case "~":
			v, err := m.eval(t.X, e)
			if err != nil {
				return Value{}, err
			}
			return IntVal(^v.AsInt()), nil
		case "++", "--":
			// Should have been normalized away; support for robustness.
			id, ok := t.X.(*cminus.Ident)
			if !ok {
				return Value{}, fmt.Errorf("interp: %s on non-identifier at %s", t.Op, t.P)
			}
			cell := e.lookup(id.Name)
			if cell == nil {
				cell = m.Globals[id.Name]
			}
			if cell == nil {
				return Value{}, fmt.Errorf("interp: unbound %q at %s", id.Name, t.P)
			}
			old := *cell
			delta := int64(1)
			if t.Op == "--" {
				delta = -1
			}
			if cell.Float {
				cell.F += float64(delta)
			} else {
				cell.I += delta
			}
			if t.Postfix {
				return old, nil
			}
			return *cell, nil
		}
		return Value{}, fmt.Errorf("interp: unary %q at %s", t.Op, t.P)
	case *cminus.CondExpr:
		c, err := m.eval(t.C, e)
		if err != nil {
			return Value{}, err
		}
		if c.Truthy() {
			return m.eval(t.T, e)
		}
		return m.eval(t.F, e)
	case *cminus.IndexExpr:
		name, idxExprs, ok := cminus.ArrayBase(t)
		if !ok {
			return Value{}, fmt.Errorf("interp: unsupported index expression at %s", t.P)
		}
		arr, found := m.Arrays[name]
		if !found {
			return Value{}, fmt.Errorf("interp: unknown array %q at %s", name, t.P)
		}
		idx := make([]int64, len(idxExprs))
		for i, ie := range idxExprs {
			v, err := m.eval(ie, e)
			if err != nil {
				return Value{}, err
			}
			idx[i] = v.AsInt()
		}
		return arr.Get(idx)
	case *cminus.CallExpr:
		return m.evalCall(t, e)
	case *cminus.CastExpr:
		v, err := m.eval(t.X, e)
		if err != nil {
			return Value{}, err
		}
		if cminus.IsFloatType(t.Type) {
			return FloatVal(v.AsFloat()), nil
		}
		return IntVal(v.AsInt()), nil
	}
	return Value{}, fmt.Errorf("interp: unsupported expression %T", x)
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func binop(op string, l, r Value) (Value, error) {
	flt := l.Float || r.Float
	switch op {
	case "+", "-", "*", "/":
		if flt {
			a, b := l.AsFloat(), r.AsFloat()
			switch op {
			case "+":
				return FloatVal(a + b), nil
			case "-":
				return FloatVal(a - b), nil
			case "*":
				return FloatVal(a * b), nil
			case "/":
				return FloatVal(a / b), nil
			}
		}
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case "+":
			return IntVal(a + b), nil
		case "-":
			return IntVal(a - b), nil
		case "*":
			return IntVal(a * b), nil
		case "/":
			if b == 0 {
				return Value{}, fmt.Errorf("interp: integer division by zero")
			}
			return IntVal(a / b), nil
		}
	case "%":
		b := r.AsInt()
		if b == 0 {
			return Value{}, fmt.Errorf("interp: modulo by zero")
		}
		return IntVal(l.AsInt() % b), nil
	case "<", "<=", ">", ">=", "==", "!=":
		if flt {
			a, b := l.AsFloat(), r.AsFloat()
			switch op {
			case "<":
				return boolVal(a < b), nil
			case "<=":
				return boolVal(a <= b), nil
			case ">":
				return boolVal(a > b), nil
			case ">=":
				return boolVal(a >= b), nil
			case "==":
				return boolVal(a == b), nil
			case "!=":
				return boolVal(a != b), nil
			}
		}
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case "<":
			return boolVal(a < b), nil
		case "<=":
			return boolVal(a <= b), nil
		case ">":
			return boolVal(a > b), nil
		case ">=":
			return boolVal(a >= b), nil
		case "==":
			return boolVal(a == b), nil
		case "!=":
			return boolVal(a != b), nil
		}
	case "&":
		return IntVal(l.AsInt() & r.AsInt()), nil
	case "|":
		return IntVal(l.AsInt() | r.AsInt()), nil
	case "^":
		return IntVal(l.AsInt() ^ r.AsInt()), nil
	case "<<":
		return IntVal(l.AsInt() << uint(r.AsInt())), nil
	case ">>":
		return IntVal(l.AsInt() >> uint(r.AsInt())), nil
	}
	return Value{}, fmt.Errorf("interp: unsupported operator %q", op)
}

func (m *Machine) evalCall(c *cminus.CallExpr, e *env) (Value, error) {
	// User-defined functions: execute the body with parameters bound.
	if fn := m.Prog.Func(c.Fun); fn != nil && fn.Body != nil {
		return m.callUser(fn, c, e)
	}
	args := make([]float64, len(c.Args))
	for i, a := range c.Args {
		v, err := m.eval(a, e)
		if err != nil {
			return Value{}, err
		}
		args[i] = v.AsFloat()
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("interp: %s expects %d args", c.Fun, n)
		}
		return nil
	}
	switch c.Fun {
	case "exp":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return FloatVal(math.Exp(args[0])), nil
	case "sqrt":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return FloatVal(math.Sqrt(args[0])), nil
	case "fabs":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return FloatVal(math.Abs(args[0])), nil
	case "sin":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return FloatVal(math.Sin(args[0])), nil
	case "cos":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return FloatVal(math.Cos(args[0])), nil
	case "log":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return FloatVal(math.Log(args[0])), nil
	case "pow":
		if err := need(2); err != nil {
			return Value{}, err
		}
		return FloatVal(math.Pow(args[0], args[1])), nil
	case "fmod":
		if err := need(2); err != nil {
			return Value{}, err
		}
		return FloatVal(math.Mod(args[0], args[1])), nil
	case "fmin":
		if err := need(2); err != nil {
			return Value{}, err
		}
		return FloatVal(math.Min(args[0], args[1])), nil
	case "fmax":
		if err := need(2); err != nil {
			return Value{}, err
		}
		return FloatVal(math.Max(args[0], args[1])), nil
	case "floor":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return FloatVal(math.Floor(args[0])), nil
	case "ceil":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return FloatVal(math.Ceil(args[0])), nil
	case "abs":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return IntVal(int64(math.Abs(args[0]))), nil
	}
	return Value{}, fmt.Errorf("interp: unknown function %q", c.Fun)
}

// execFor runs a for loop, in parallel when the plan selects it.
func (m *Machine) execFor(loop *cminus.ForStmt, e *env, fp *parallelize.FuncPlan) error {
	var lp *parallelize.LoopPlan
	if fp != nil {
		lp = fp.Loops[loop.Label]
	}
	if lp != nil && lp.Chosen && m.Workers > 1 {
		ok, err := m.checksPass(lp, e)
		if err != nil {
			return err
		}
		if ok {
			return m.execParallelFor(loop, e, fp, lp)
		}
		m.Stats.RuntimeFallback++
	}
	// Serial execution.
	scope := &env{vars: map[string]*Value{}, parent: e}
	if loop.Init != nil {
		if err := m.execStmt(loop.Init, scope, fp); err != nil {
			return err
		}
	}
	for {
		if err := m.interrupt(); err != nil {
			return err
		}
		if loop.Cond != nil {
			c, err := m.eval(loop.Cond, scope)
			if err != nil {
				return err
			}
			if !c.Truthy() {
				return nil
			}
		}
		err := m.execBlock(loop.Body, &env{vars: map[string]*Value{}, parent: scope}, fp)
		if err == errBreak {
			return nil
		}
		if err != nil && err != errContinue {
			return err
		}
		if loop.Post != nil {
			if err := m.execStmt(loop.Post, scope, fp); err != nil {
				return err
			}
		}
	}
}

// checksPass evaluates the decision's runtime checks in the current
// environment (counter_max symbols resolve to the counters' current
// values).
func (m *Machine) checksPass(lp *parallelize.LoopPlan, e *env) (bool, error) {
	for _, chk := range lp.Decision.RuntimeChecks {
		v, err := m.evalSymbolicCond(chk.String(), e)
		if err != nil {
			return false, err
		}
		if !v {
			return false, nil
		}
	}
	return true, nil
}

// evalSymbolicCond parses and evaluates a rendered symbolic condition in
// the current environment by reusing the mini-C expression parser.
func (m *Machine) evalSymbolicCond(cond string, e *env) (bool, error) {
	src := fmt.Sprintf("void __c(void) { int __r; __r = (%s); }", cond)
	prog, err := cminus.Parse(src)
	if err != nil {
		return false, fmt.Errorf("interp: bad runtime check %q: %v", cond, err)
	}
	as := prog.Funcs[0].Body.Stmts[1].(*cminus.AssignStmt)
	v, err := m.eval(as.RHS, e)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

// execParallelFor runs the loop's iterations on a worker pool following
// the OpenMP semantics of the emitted pragma.
func (m *Machine) execParallelFor(loop *cminus.ForStmt, e *env, fp *parallelize.FuncPlan, lp *parallelize.LoopPlan) error {
	m.Stats.ParallelRegions++
	// The loop is normalized: i = 0; i < N; i = i+1.
	ivar, _, ok := initVarName(loop.Init)
	if !ok {
		return fmt.Errorf("interp: parallel loop %s has non-canonical init", loop.Label)
	}
	n, err := m.iterCount(loop, e)
	if err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	workers := m.Workers
	if int64(workers) > n {
		workers = int(n)
	}

	d := lp.Decision
	type redSlot struct {
		name string
		op   string
	}
	var reds []redSlot
	for v, op := range d.Reductions {
		reds = append(reds, redSlot{v, op})
	}

	runChunk := func(start, end int64, redCells map[string]*Value) error {
		local := &env{vars: map[string]*Value{}, parent: e}
		// Privates: fresh cells shadowing the outer ones.
		for _, p := range d.Privates {
			proto := e.lookup(p)
			isFloat := proto != nil && proto.Float
			local.define(p, Value{Float: isFloat})
		}
		for name, cell := range redCells {
			local.vars[name] = cell
		}
		iv := &Value{}
		local.vars[ivar] = iv
		for it := start; it < end; it++ {
			if err := m.interrupt(); err != nil {
				return err
			}
			iv.I = it
			if err := m.execBlock(loop.Body, &env{vars: map[string]*Value{}, parent: local}, fp); err != nil {
				return err
			}
		}
		return nil
	}

	makeRedCells := func() map[string]*Value {
		cells := map[string]*Value{}
		for _, r := range reds {
			proto := e.lookup(r.name)
			isFloat := proto != nil && proto.Float
			init := Value{Float: isFloat}
			if r.op == "*" {
				if isFloat {
					init.F = 1
				} else {
					init.I = 1
				}
			}
			cells[r.name] = &Value{I: init.I, F: init.F, Float: init.Float}
		}
		return cells
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	workerRed := make([]map[string]*Value, workers)

	if m.DynamicChunk > 0 {
		var next int64
		var mu sync.Mutex
		chunk := int64(m.DynamicChunk)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			workerRed[w] = makeRedCells()
			go func(w int) {
				defer wg.Done()
				for {
					mu.Lock()
					start := next
					next += chunk
					mu.Unlock()
					if start >= n {
						return
					}
					end := start + chunk
					if end > n {
						end = n
					}
					if err := runChunk(start, end, workerRed[w]); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
	} else {
		per := (n + int64(workers) - 1) / int64(workers)
		for w := 0; w < workers; w++ {
			start := int64(w) * per
			end := start + per
			if end > n {
				end = n
			}
			if start >= end {
				continue
			}
			wg.Add(1)
			workerRed[w] = makeRedCells()
			go func(w int, start, end int64) {
				defer wg.Done()
				errs[w] = runChunk(start, end, workerRed[w])
			}(w, start, end)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Combine reductions deterministically in worker order.
	for _, r := range reds {
		target := e.lookup(r.name)
		if target == nil {
			target = m.Globals[r.name]
		}
		if target == nil {
			continue
		}
		for w := 0; w < workers; w++ {
			if workerRed[w] == nil {
				continue
			}
			cell := workerRed[w][r.name]
			nv, err := binop(r.op, *target, *cell)
			if err != nil {
				return err
			}
			*target = convert(nv, target.Float)
		}
	}
	// The loop variable's final value.
	if cell := e.lookup(ivar); cell != nil {
		cell.I = n
	}
	return nil
}

func (m *Machine) iterCount(loop *cminus.ForStmt, e *env) (int64, error) {
	cond, ok := loop.Cond.(*cminus.BinaryExpr)
	if !ok || cond.Op != "<" {
		return 0, fmt.Errorf("interp: parallel loop %s has non-canonical condition", loop.Label)
	}
	v, err := m.eval(cond.Y, e)
	if err != nil {
		return 0, err
	}
	return v.AsInt(), nil
}

func initVarName(s cminus.Stmt) (string, cminus.Expr, bool) {
	switch x := s.(type) {
	case *cminus.AssignStmt:
		if id, ok := x.LHS.(*cminus.Ident); ok {
			return id.Name, x.RHS, true
		}
	case *cminus.DeclStmt:
		if len(x.Items) == 1 && x.Items[0].Init != nil {
			return x.Items[0].Name, x.Items[0].Init, true
		}
	}
	return "", nil, false
}
