package interp

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/cminus"
)

// TestCancelInfiniteLoop proves both engines abort a non-terminating
// program at a loop back edge once the machine's context is canceled,
// returning an error that wraps budget.ErrCanceled instead of hanging.
func TestCancelInfiniteLoop(t *testing.T) {
	progs := map[string]string{
		"while": `void spin(void) { int x; x = 0; while (1) { x = x + 1; } }`,
		"for":   `void spin(void) { int i; int x; x = 0; for (i = 0; i < 10; i = i) { x = x + 1; } }`,
	}
	for _, engine := range []string{"tree", "compiled", "vm"} {
		for shape, src := range progs {
			t.Run(engine+"/"+shape, func(t *testing.T) {
				m, err := New(cminus.MustParse(src))
				if err != nil {
					t.Fatal(err)
				}
				m.Interp = engine
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
				defer cancel()
				m.Ctx = ctx

				done := make(chan error, 1)
				go func() { done <- m.Call("spin") }()
				select {
				case err := <-done:
					if !errors.Is(err, budget.ErrCanceled) {
						t.Fatalf("got %v, want budget.ErrCanceled", err)
					}
				case <-time.After(10 * time.Second):
					t.Fatal("canceled program did not stop")
				}
			})
		}
	}
}

// TestCancelNilCtxNoop: without a context the machine runs to completion
// exactly as before.
func TestCancelNilCtxNoop(t *testing.T) {
	src := `void sum(int *out) { int i; int s; s = 0; for (i = 0; i < 100000; i++) { s = s + 1; } out[0] = s; }`
	for _, engine := range []string{"tree", "compiled", "vm"} {
		m, err := New(cminus.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		m.Interp = engine
		out := NewIntArray("out", 1)
		if err := m.Call("sum", out); err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if out.Ints[0] != 100000 {
			t.Fatalf("%s: got %d", engine, out.Ints[0])
		}
	}
}
