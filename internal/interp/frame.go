package interp

// Frames and the compiled parallel-loop driver. A frame is the flat
// per-call activation record of a compiled function: scalar locals live
// in typed slots, privatizable globals in cell slots, and arrays in
// reference slots. Frames are pooled per function, and the parallel
// driver hands each worker one reused frame per region, so the steady
// state of a compiled loop allocates nothing per iteration.

import (
	"fmt"
	"sync"

	"repro/internal/cminus"
	"repro/internal/parallelize"
)

// frame is the flat activation record of one compiled call.
type frame struct {
	ints  []int64
	flts  []float64
	cells []*Value // privatizable globals (workers swap in private cells)
	arrs  []*Array
	ret   Value
}

// Parameter slot kinds.
const (
	psInt uint8 = iota
	psFlt
	psArr
)

type paramSlot struct {
	name string
	kind uint8
	idx  int
}

// entryArr binds a frame array slot from m.Arrays at call entry (the
// compiled analogue of the tree walker's lazy global-array lookup).
type entryArr struct {
	slot int
	name string
}

// entryCell aliases a frame cell slot to a global's cell at call entry.
type entryCell struct {
	slot int
	g    *Value
}

// cfunc is one compiled function.
type cfunc struct {
	name       string
	decl       *cminus.FuncDecl
	nInts      int
	nFlts      int
	nCells     int
	nArrs      int
	params     []paramSlot
	entryArrs  []entryArr
	entryCells []entryCell
	body       cstmt
	pool       sync.Pool
}

func newCfunc(fn *cminus.FuncDecl) *cfunc {
	return &cfunc{name: fn.Name, decl: fn}
}

// finish seals the compiled function: slot counts are final, so the
// frame pool can be armed.
func (cf *cfunc) finish(fc *fnCompiler) {
	cf.pool.New = func() any {
		return &frame{
			ints:  make([]int64, cf.nInts),
			flts:  make([]float64, cf.nFlts),
			cells: make([]*Value, cf.nCells),
			arrs:  make([]*Array, cf.nArrs),
		}
	}
}

func (cf *cfunc) newFrame() *frame { return cf.pool.Get().(*frame) }

func (cf *cfunc) release(fr *frame) { cf.pool.Put(fr) }

// bindEntry prepares a fresh (possibly pooled) frame: array slots are
// cleared and globals re-resolved, so staleness never leaks across calls.
// Scalar columns are zeroed too — declared locals re-zero at their
// DeclStmt anyway, but implicit locals read before their first
// assignment (ill-formed, yet executable) must observe a deterministic
// zero rather than pooled garbage, on every engine identically.
func (cf *cfunc) bindEntry(fr *frame, m *Machine) {
	for i := range fr.ints {
		fr.ints[i] = 0
	}
	for i := range fr.flts {
		fr.flts[i] = 0
	}
	for i := range fr.arrs {
		fr.arrs[i] = nil
	}
	for _, ea := range cf.entryArrs {
		fr.arrs[ea.slot] = m.Arrays[ea.name]
	}
	for _, ec := range cf.entryCells {
		fr.cells[ec.slot] = ec.g
	}
}

// ensureCompiled compiles the program on first use and recompiles when
// the plan pointer changed since (plans are immutable once built).
func (m *Machine) ensureCompiled() *compiledProgram {
	if m.comp == nil || m.comp.plan != m.Plan {
		m.comp = compileProgram(m)
	}
	return m.comp
}

// callCompiled is Machine.Call on the compiled engine.
func (m *Machine) callCompiled(name string, args []Arg) (err error) {
	cp := m.ensureCompiled()
	cf := cp.funcs[name]
	if cf == nil {
		return fmt.Errorf("interp: no function %q", name)
	}
	if len(args) != len(cf.params) {
		return fmt.Errorf("interp: %s expects %d args, got %d", name, len(cf.params), len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			ee, ok := r.(engineErr)
			if !ok {
				panic(r)
			}
			err = ee.err
		}
	}()
	fr := cf.newFrame()
	defer cf.release(fr)
	cf.bindEntry(fr, m)
	for i, ps := range cf.params {
		switch ps.kind {
		case psArr:
			a, ok := args[i].(*Array)
			if !ok {
				return fmt.Errorf("interp: unsupported argument %T", args[i])
			}
			fr.arrs[ps.idx] = a
		case psFlt:
			v, ok := argValue(args[i])
			if !ok {
				return fmt.Errorf("interp: unsupported argument %T", args[i])
			}
			fr.flts[ps.idx] = v.AsFloat()
		default:
			v, ok := argValue(args[i])
			if !ok {
				return fmt.Errorf("interp: unsupported argument %T", args[i])
			}
			fr.ints[ps.idx] = v.AsInt()
		}
	}
	fr.ret = Value{}
	cf.body(fr)
	return nil
}

func argValue(a Arg) (Value, bool) {
	switch v := a.(type) {
	case Value:
		return v, true
	case int:
		return IntVal(int64(v)), true
	case int64:
		return IntVal(v), true
	case float64:
		return FloatVal(v), true
	}
	return Value{}, false
}

// ---- parallel loops ----

// Parallel slot kinds: where a private/reduction variable lives.
const (
	pkLocalInt uint8 = iota
	pkLocalFlt
	pkCell
)

type privSlot struct {
	kind  uint8
	slot  int
	float bool
}

type redSlot struct {
	kind  uint8
	slot  int
	float bool
	op    string
}

// cparloop is the compiled parallel form of one chosen loop. It mirrors
// the tree walker's execParallelFor byte for byte: same chunking, same
// private-per-chunk resets, same reduction identities and worker-order
// combines — so both engines produce bit-identical results at equal
// worker counts.
type cparloop struct {
	m        *Machine
	cf       *cfunc
	label    string
	okInit   bool
	okCond   bool
	ivarCell bool // loop var is a promoted global (cell slot)
	ivarSlot int
	nFn      iexpr
	body     cstmt
	privs    []privSlot
	reds     []redSlot
}

// compileParallelFor resolves the loop's shape and clauses against the
// function's slots. body is the already-compiled loop body (shared with
// the serial form).
func (fc *fnCompiler) compileParallelFor(loop *cminus.ForStmt, lp *parallelize.LoopPlan, body cstmt) *cparloop {
	pl := &cparloop{m: fc.c.m, cf: fc.cf, label: loop.Label, body: body}
	if ivar, _, ok := initVarName(loop.Init); ok {
		switch s := fc.resolveScalar(ivar); s.kind {
		case syLocalInt:
			pl.okInit, pl.ivarSlot = true, s.idx
		case syCell:
			pl.okInit, pl.ivarCell, pl.ivarSlot = true, true, s.idx
		}
	}
	if cond, ok := loop.Cond.(*cminus.BinaryExpr); ok && cond.Op == "<" {
		pl.okCond = true
		pl.nFn = fc.asI(cond.Y)
	}
	d := lp.Decision
	for _, p := range d.Privates {
		switch s := fc.resolveScalar(p); s.kind {
		case syLocalInt:
			pl.privs = append(pl.privs, privSlot{kind: pkLocalInt, slot: s.idx})
		case syLocalFlt:
			pl.privs = append(pl.privs, privSlot{kind: pkLocalFlt, slot: s.idx})
		case syCell:
			pl.privs = append(pl.privs, privSlot{kind: pkCell, slot: s.idx, float: s.float})
		}
	}
	for _, rv := range sortedReductions(d.Reductions) {
		switch s := fc.resolveScalar(rv[0]); s.kind {
		case syLocalInt:
			pl.reds = append(pl.reds, redSlot{kind: pkLocalInt, slot: s.idx, op: rv[1]})
		case syLocalFlt:
			pl.reds = append(pl.reds, redSlot{kind: pkLocalFlt, slot: s.idx, float: true, op: rv[1]})
		case syCell:
			pl.reds = append(pl.reds, redSlot{kind: pkCell, slot: s.idx, float: s.float, op: rv[1]})
		}
	}
	return pl
}

// setup clones the parent frame into a pooled worker frame: shared
// scalars and arrays copy through; privatized cells and reduction slots
// get worker-private storage seeded with the reduction identity.
func (pl *cparloop) setup(parent *frame) *frame {
	wfr := pl.cf.newFrame()
	copy(wfr.ints, parent.ints)
	copy(wfr.flts, parent.flts)
	copy(wfr.cells, parent.cells)
	copy(wfr.arrs, parent.arrs)
	if pl.ivarCell {
		wfr.cells[pl.ivarSlot] = &Value{}
	}
	for _, p := range pl.privs {
		if p.kind == pkCell {
			wfr.cells[p.slot] = &Value{Float: p.float}
		}
	}
	for _, r := range pl.reds {
		ident := int64(0)
		if r.op == "*" {
			ident = 1
		}
		switch r.kind {
		case pkLocalInt:
			wfr.ints[r.slot] = ident
		case pkLocalFlt:
			wfr.flts[r.slot] = float64(ident)
		case pkCell:
			c := &Value{Float: r.float}
			if r.float {
				c.F = float64(ident)
			} else {
				c.I = ident
			}
			wfr.cells[r.slot] = c
		}
	}
	wfr.ret = Value{}
	return wfr
}

// runChunk executes [start,end) on a worker frame, zeroing privates
// per chunk exactly like the tree walker's per-chunk scopes.
func (pl *cparloop) runChunk(wfr *frame, start, end int64) control {
	for _, p := range pl.privs {
		switch p.kind {
		case pkLocalInt:
			wfr.ints[p.slot] = 0
		case pkLocalFlt:
			wfr.flts[p.slot] = 0
		case pkCell:
			c := wfr.cells[p.slot]
			c.I, c.F = 0, 0
		}
	}
	ivar := pl.ivarSlot
	if pl.ivarCell {
		c := wfr.cells[ivar]
		for it := start; it < end; it++ {
			pl.m.interruptCompiled()
			c.I = it
			if ctl := pl.body(wfr); ctl != ctlNext {
				return ctl
			}
		}
		return ctlNext
	}
	for it := start; it < end; it++ {
		pl.m.interruptCompiled()
		wfr.ints[ivar] = it
		if ctl := pl.body(wfr); ctl != ctlNext {
			return ctl
		}
	}
	return ctlNext
}

func (pl *cparloop) run(parent *frame) control {
	m := pl.m
	m.Stats.ParallelRegions++
	if !pl.okInit {
		throwf("interp: parallel loop %s has non-canonical init", pl.label)
	}
	if !pl.okCond {
		throwf("interp: parallel loop %s has non-canonical condition", pl.label)
	}
	n := pl.nFn(parent)
	if n <= 0 {
		return ctlNext
	}
	workers := m.Workers
	if int64(workers) > n {
		workers = int(n)
	}

	frames := make([]*frame, workers)
	errs := make([]error, workers)
	ctls := make([]control, workers)
	var wg sync.WaitGroup
	work := func(w int, job func(wfr *frame) control) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				ee, ok := r.(engineErr)
				if !ok {
					panic(r)
				}
				errs[w] = ee.err
			}
		}()
		ctls[w] = job(frames[w])
	}

	if m.DynamicChunk > 0 {
		chunk := int64(m.DynamicChunk)
		var mu sync.Mutex
		var next int64
		for w := 0; w < workers; w++ {
			frames[w] = pl.setup(parent)
			wg.Add(1)
			go work(w, func(wfr *frame) control {
				for {
					mu.Lock()
					start := next
					next += chunk
					mu.Unlock()
					if start >= n {
						return ctlNext
					}
					end := start + chunk
					if end > n {
						end = n
					}
					if ctl := pl.runChunk(wfr, start, end); ctl != ctlNext {
						return ctl
					}
				}
			})
		}
	} else {
		per := (n + int64(workers) - 1) / int64(workers)
		for w := 0; w < workers; w++ {
			start := int64(w) * per
			end := start + per
			if end > n {
				end = n
			}
			if start >= end {
				continue
			}
			frames[w] = pl.setup(parent)
			wg.Add(1)
			go work(w, func(wfr *frame) control { return pl.runChunk(wfr, start, end) })
		}
	}
	wg.Wait()

	release := func() {
		for _, wfr := range frames {
			if wfr != nil {
				pl.cf.release(wfr)
			}
		}
	}
	// Anomalies propagate in worker order before reductions combine,
	// matching the tree walker's error scan.
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			err := errs[w]
			release()
			panic(engineErr{err})
		}
		if ctls[w] != ctlNext {
			ctl := ctls[w]
			if ctl == ctlReturn {
				parent.ret = frames[w].ret
			}
			release()
			return ctl
		}
	}
	// Combine reductions deterministically in worker order.
	for _, r := range pl.reds {
		for w := 0; w < workers; w++ {
			wfr := frames[w]
			if wfr == nil {
				continue
			}
			switch r.kind {
			case pkLocalInt:
				parent.ints[r.slot] = intCombine(r.op)(parent.ints[r.slot], wfr.ints[r.slot])
			case pkLocalFlt:
				parent.flts[r.slot] = floatCombine(r.op)(parent.flts[r.slot], wfr.flts[r.slot])
			case pkCell:
				target, cell := parent.cells[r.slot], wfr.cells[r.slot]
				if r.float {
					target.F = floatCombine(r.op)(target.F, cell.F)
				} else {
					target.I = intCombine(r.op)(target.I, cell.I)
				}
			}
		}
	}
	// The loop variable's final value (locals only: the tree walker's
	// env lookup misses globals here, so the cell form skips it too).
	if !pl.ivarCell {
		parent.ints[pl.ivarSlot] = n
	}
	release()
	return ctlNext
}
