package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLaplacianShape(t *testing.T) {
	m := Laplacian3D(4, 4, 4)
	if m.Rows != 64 || m.Cols != 64 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	// Interior points have 27 neighbours.
	interior := (2 * 2 * 2)
	_ = interior
	maxRow := 0
	for i := 0; i < m.Rows; i++ {
		if m.RowNNZ(i) > maxRow {
			maxRow = m.RowNNZ(i)
		}
	}
	if maxRow != 27 {
		t.Errorf("max row nnz = %d, want 27", maxRow)
	}
	// Corner points have 8.
	if m.RowNNZ(0) != 8 {
		t.Errorf("corner nnz = %d, want 8", m.RowNNZ(0))
	}
	// Row sums: 26 - (nnz-1) since off-diagonals are -1.
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			sum += m.Val[p]
		}
		want := 26.0 - float64(m.RowNNZ(i)-1)
		if math.Abs(sum-want) > 1e-12 {
			t.Fatalf("row %d sum %g want %g", i, sum, want)
		}
	}
}

func TestRandomCSRDeterministic(t *testing.T) {
	a := RandomCSR(7, 100, 100, 10, Skewed, 0.2)
	b := RandomCSR(7, 100, 100, 10, Skewed, 0.2)
	if a.NNZ() != b.NNZ() {
		t.Fatal("generator not deterministic")
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] {
			t.Fatal("column streams differ")
		}
	}
}

func TestEmptyRowsAppear(t *testing.T) {
	m := RandomCSR(1, 1000, 1000, 5, Balanced, 0.25)
	empty := 0
	for i := 0; i < m.Rows; i++ {
		if m.RowNNZ(i) == 0 {
			empty++
		}
	}
	if empty < 150 || empty > 350 {
		t.Errorf("empty rows = %d, want ≈250", empty)
	}
}

func TestShapeCharacter(t *testing.T) {
	bal := RandomCSC(1, 2000, 2000, 30, Balanced)
	skw := RandomCSC(1, 2000, 2000, 30, Skewed)
	cv := func(m *CSC) float64 {
		var sum, sq float64
		n := float64(m.Cols)
		for j := 0; j < m.Cols; j++ {
			v := float64(m.ColNNZ(j))
			sum += v
			sq += v * v
		}
		mean := sum / n
		return math.Sqrt(sq/n-mean*mean) / mean
	}
	if cv(bal) > 0.2 {
		t.Errorf("balanced CV = %g, want < 0.2", cv(bal))
	}
	if cv(skw) < 0.5 {
		t.Errorf("skewed CV = %g, want > 0.5", cv(skw))
	}
}

// TestQuickCSRWellFormed: row pointers are monotone and indices in range.
func TestQuickCSRWellFormed(t *testing.T) {
	f := func(seed int64, shapeRaw uint8) bool {
		shape := RowShape(shapeRaw % 3)
		m := RandomCSR(seed, 200, 150, 8, shape, 0.1)
		if m.RowPtr[0] != 0 || int(m.RowPtr[m.Rows]) != m.NNZ() {
			return false
		}
		for i := 0; i < m.Rows; i++ {
			if m.RowPtr[i+1] < m.RowPtr[i] {
				return false
			}
		}
		for _, c := range m.ColIdx {
			if c < 0 || int(c) >= m.Cols {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDatasetCatalog(t *testing.T) {
	if len(SDDMMDatasets) != 4 {
		t.Fatalf("want 4 SDDMM datasets")
	}
	if len(AMGMatrices) != 5 {
		t.Fatalf("want 5 AMG matrices")
	}
	if len(UAClasses) != 4 {
		t.Fatalf("want 4 UA classes")
	}
	// AMG matrix sizes grow with the paper's serial-time ratios.
	prev := 0
	for _, g := range AMGMatrices {
		n := g.Nx * g.Ny * g.Nz
		if n <= prev {
			t.Errorf("%s does not grow", g.Name)
		}
		prev = n
	}
	// af_shell1 is the balanced one.
	if AfShell1.Shape != Balanced {
		t.Error("af_shell1 must be balanced (Figure 16's static-wins case)")
	}
}

func TestCSCColumnsNonEmpty(t *testing.T) {
	m := RandomCSC(3, 500, 500, 4, Skewed)
	for j := 0; j < m.Cols; j++ {
		if m.ColNNZ(j) == 0 {
			t.Fatalf("column %d empty", j)
		}
	}
}
