// Package sparse provides the sparse-matrix substrate for the benchmark
// kernels: CSR/CSC storage and deterministic synthetic generators standing
// in for the paper's input datasets (DESIGN.md §4.2). The generators
// reproduce each dataset's published dimensions (scaled) and row/column
// occupancy character — balanced vs skewed — which is what drives the load
// balance effects in Figures 15 and 16.
package sparse

import (
	"math"
	"math/rand"
)

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Val        []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// RowNNZ returns the entry count of row i.
func (m *CSR) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// CSC is a compressed-sparse-column matrix.
type CSC struct {
	Rows, Cols int
	ColPtr     []int32
	RowIdx     []int32
	Val        []float64
}

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.RowIdx) }

// ColNNZ returns the entry count of column j.
func (m *CSC) ColNNZ(j int) int { return int(m.ColPtr[j+1] - m.ColPtr[j]) }

// Laplacian3D builds the 27-point Laplacian of an nx×ny×nz grid — the
// AMGmk (CORAL) MATRIX inputs are Laplacians of this family.
func Laplacian3D(nx, ny, nz int) *CSR {
	n := nx * ny * nz
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int32, n+1)}
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							xx, yy, zz := x+dx, y+dy, z+dz
							if xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 || zz >= nz {
								continue
							}
							v := -1.0
							if dx == 0 && dy == 0 && dz == 0 {
								v = 26.0
							}
							m.ColIdx = append(m.ColIdx, int32(idx(xx, yy, zz)))
							m.Val = append(m.Val, v)
						}
					}
				}
				m.RowPtr[idx(x, y, z)+1] = int32(len(m.ColIdx))
			}
		}
	}
	return m
}

// RowShape selects the occupancy distribution of a random matrix.
type RowShape int

// Occupancy shapes.
const (
	// Balanced rows: occupancy ~ mean with small jitter (af_shell1-like).
	Balanced RowShape = iota
	// Skewed rows: a long-tailed (approximately power-law) occupancy
	// (gsm_106857 / dielFilterV2clx-like).
	Skewed
	// Clustered: a dense head of rows followed by a sparse tail
	// (crankseg_1-like).
	Clustered
)

// RandomCSR builds a deterministic random matrix with the given row
// occupancy character. Empty rows appear with probability emptyFrac
// (AMGmk's A_rownnz exists precisely because some rows are empty).
func RandomCSR(seed int64, rows, cols, meanNNZ int, shape RowShape, emptyFrac float64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for i := 0; i < rows; i++ {
		nnz := rowOccupancy(rng, i, rows, meanNNZ, shape, emptyFrac)
		if nnz > cols {
			nnz = cols
		}
		for c := 0; c < nnz; c++ {
			m.ColIdx = append(m.ColIdx, int32(rng.Intn(cols)))
			m.Val = append(m.Val, rng.Float64()*2-1)
		}
		m.RowPtr[i+1] = int32(len(m.ColIdx))
	}
	return m
}

// RandomCSC builds a deterministic random matrix in CSC form with the
// given column occupancy character (every column non-empty; SDDMM's
// col_ptr construction assumes at least one entry per compressed column).
func RandomCSC(seed int64, rows, cols, meanNNZ int, shape RowShape) *CSC {
	rng := rand.New(rand.NewSource(seed))
	m := &CSC{Rows: rows, Cols: cols, ColPtr: make([]int32, cols+1)}
	for j := 0; j < cols; j++ {
		nnz := rowOccupancy(rng, j, cols, meanNNZ, shape, 0)
		if nnz < 1 {
			nnz = 1
		}
		if nnz > rows {
			nnz = rows
		}
		for c := 0; c < nnz; c++ {
			m.RowIdx = append(m.RowIdx, int32(rng.Intn(rows)))
			m.Val = append(m.Val, rng.Float64()*2-1)
		}
		m.ColPtr[j+1] = int32(len(m.RowIdx))
	}
	return m
}

func rowOccupancy(rng *rand.Rand, i, n, mean int, shape RowShape, emptyFrac float64) int {
	if emptyFrac > 0 && rng.Float64() < emptyFrac {
		return 0
	}
	switch shape {
	case Balanced:
		// mean ± 10%.
		jitter := int(float64(mean) * 0.1)
		if jitter < 1 {
			jitter = 1
		}
		return mean - jitter + rng.Intn(2*jitter+1)
	case Skewed:
		// Pareto-like: most rows small, a heavy tail carrying the bulk.
		u := rng.Float64()
		v := float64(mean) * 0.4 / math.Pow(1-u*0.999, 0.7)
		nnz := int(v)
		if nnz < 1 {
			nnz = 1
		}
		if nnz > 50*mean {
			nnz = 50 * mean
		}
		// Real skewed matrices cluster their dense rows (structure or
		// degree ordering): one contiguous window of n/8 rows is twice as
		// dense, which is what static contiguous chunking mishandles
		// (Figure 16).
		if i >= n/4 && i < n/4+n/8 {
			nnz *= 2
		}
		return nnz
	case Clustered:
		// First 10% of rows dense, the rest sparse.
		if i < n/10 {
			return mean * 6
		}
		return mean / 2
	}
	return mean
}

// Dataset names a synthetic stand-in for one of the paper's inputs.
type Dataset struct {
	// Name as in Table 1 (asterisked names come from SuiteSparse).
	Name string
	// Rows/Cols/MeanNNZ give the scaled-down shape.
	Rows, Cols, MeanNNZ int
	Shape               RowShape
	// EmptyFrac is the empty-row fraction (AMG inputs).
	EmptyFrac float64
	Seed      int64
}

// Build materializes the dataset as CSR.
func (d Dataset) Build() *CSR {
	return RandomCSR(d.Seed, d.Rows, d.Cols, d.MeanNNZ, d.Shape, d.EmptyFrac)
}

// BuildCSC materializes the dataset as CSC.
func (d Dataset) BuildCSC() *CSC {
	return RandomCSC(d.Seed, d.Rows, d.Cols, d.MeanNNZ, d.Shape)
}

// SDDMM datasets (SuiteSparse stand-ins, scaled ~64x down from the
// published sizes, preserving the occupancy character: af_shell1 is
// famously uniform — the paper's Figure 16 notes static scheduling wins
// there — while the others are skewed).
var (
	GSM106857     = Dataset{Name: "gsm_106857", Rows: 9200, Cols: 9200, MeanNNZ: 36, Shape: Skewed, Seed: 1}
	DielFilterV2  = Dataset{Name: "dielFilterV2clx", Rows: 6500, Cols: 6500, MeanNNZ: 72, Shape: Skewed, Seed: 2}
	AfShell1      = Dataset{Name: "af_shell1", Rows: 7900, Cols: 7900, MeanNNZ: 35, Shape: Balanced, Seed: 3}
	Inline1       = Dataset{Name: "inline_1", Rows: 7800, Cols: 7800, MeanNNZ: 73, Shape: Skewed, Seed: 4}
	Spal004       = Dataset{Name: "spal_004", Rows: 5000, Cols: 5000, MeanNNZ: 92, Shape: Clustered, Seed: 5}
	Crankseg1     = Dataset{Name: "crankseg_1", Rows: 5200, Cols: 5200, MeanNNZ: 200, Shape: Clustered, Seed: 6}
	SDDMMDatasets = []Dataset{GSM106857, DielFilterV2, AfShell1, Inline1}
)

// AMGGrid describes one AMGmk MATRIX input (a 27-point Laplacian grid).
type AMGGrid struct {
	Name       string
	Nx, Ny, Nz int
}

// AMGMatrices are the five CORAL AMGmk inputs; sizes scale roughly with
// the paper's serial-time ratios (1 : 2.2 : 5.6 : 10 : 20).
var AMGMatrices = []AMGGrid{
	{"MATRIX1", 26, 26, 26},
	{"MATRIX2", 34, 34, 34},
	{"MATRIX3", 46, 46, 46},
	{"MATRIX4", 56, 56, 56},
	{"MATRIX5", 70, 70, 70},
}

// Build materializes the grid's Laplacian.
func (g AMGGrid) Build() *CSR { return Laplacian3D(g.Nx, g.Ny, g.Nz) }

// UAClass describes a UA benchmark class (element counts; CLASS A-D grow
// roughly with the paper's serial-time ratios).
type UAClass struct {
	Name string
	Lelt int
}

// UAClasses are the four NPB UA input classes.
var UAClasses = []UAClass{
	{"CLASS A", 3000},
	{"CLASS B", 12000},
	{"CLASS C", 48000},
	{"CLASS D", 192000},
}
