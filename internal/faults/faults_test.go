package faults

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/budget"
)

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	Inject("phase1.Run", "", nil) // must not panic or block
}

func TestPanicAction(t *testing.T) {
	t.Cleanup(Reset)
	Set("site", Panic("boom"))
	err := budget.Guard(func() { Inject("site", "", nil) })
	var pe *budget.PanicError
	if !errors.As(err, &pe) || !strings.Contains(pe.Value, "boom") {
		t.Fatalf("err = %v, want injected panic", err)
	}
	// One-shot: the second hit passes through.
	if err := budget.Guard(func() { Inject("site", "", nil) }); err != nil {
		t.Fatalf("second hit fired: %v", err)
	}
}

func TestDetailFilter(t *testing.T) {
	t.Cleanup(Reset)
	a := Panic("boom").For("g")
	Set("site", a)
	if err := budget.Guard(func() { Inject("site", "f", nil) }); err != nil {
		t.Fatalf("non-matching detail fired: %v", err)
	}
	if err := budget.Guard(func() { Inject("site", "g", nil) }); err == nil {
		t.Fatalf("matching detail did not fire")
	}
	if a.Hits() != 1 {
		t.Fatalf("Hits = %d", a.Hits())
	}
}

func TestStallAbortsOnCancel(t *testing.T) {
	t.Cleanup(Reset)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	b := budget.New(ctx, 0)
	Set("site", Stall(30*time.Second))
	start := time.Now()
	err := budget.Guard(func() { Inject("site", "", b) })
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("stall ignored cancellation")
	}
}

func TestStallTimesOutWithoutBudget(t *testing.T) {
	t.Cleanup(Reset)
	Set("site", Stall(10*time.Millisecond))
	if err := budget.Guard(func() { Inject("site", "", nil) }); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestExhaustBudget(t *testing.T) {
	t.Cleanup(Reset)
	b := budget.New(nil, 1_000_000)
	Set("site", ExhaustBudget())
	err := budget.Guard(func() { Inject("site", "", b) })
	if !errors.Is(err, budget.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestModeFire(t *testing.T) {
	t.Cleanup(Reset)
	a := Mode("drop").For("peer-b").Times(2)
	Set("server.peerfill", a)

	if mode, ok := Fire("server.peerfill", "peer-a"); ok {
		t.Fatalf("non-matching detail fired mode %q", mode)
	}
	for i := 0; i < 2; i++ {
		mode, ok := Fire("server.peerfill", "peer-b")
		if !ok || mode != "drop" {
			t.Fatalf("hit %d: mode=%q ok=%t, want drop/true", i, mode, ok)
		}
	}
	if _, ok := Fire("server.peerfill", "peer-b"); ok {
		t.Fatal("mode fired past its hit budget")
	}
	if a.Hits() != 2 {
		t.Fatalf("Hits = %d, want 2", a.Hits())
	}
	// Inject at the same site must ignore a Mode action (wrong kind).
	if err := budget.Guard(func() { Inject("server.peerfill", "peer-b", nil) }); err != nil {
		t.Fatalf("Inject interpreted a mode action: %v", err)
	}
}

func TestListReportsArmedState(t *testing.T) {
	t.Cleanup(Reset)
	if Armed() || len(List()) != 0 {
		t.Fatal("fresh registry should be disarmed and empty")
	}
	Set("store.write", Mode("crash").For("somekey"))
	Set("phase1.Run", Stall(time.Second).Times(3))
	if !Armed() {
		t.Fatal("registry should be armed")
	}
	infos := List()
	if len(infos) != 2 {
		t.Fatalf("List returned %d entries, want 2", len(infos))
	}
	// Sorted by site: phase1.Run before store.write.
	if infos[0].Site != "phase1.Run" || infos[0].Kind != "stall" || infos[0].Remaining != 3 {
		t.Fatalf("infos[0] = %+v", infos[0])
	}
	if infos[1].Site != "store.write" || infos[1].Kind != "mode" || infos[1].Mode != "crash" || infos[1].Detail != "somekey" {
		t.Fatalf("infos[1] = %+v", infos[1])
	}
	if _, ok := Fire("store.write", "somekey"); !ok {
		t.Fatal("armed mode did not fire")
	}
	if got := List()[1]; got.Hits != 1 || got.Remaining != 0 {
		t.Fatalf("after firing: %+v", got)
	}
	Reset()
	if Armed() || len(List()) != 0 {
		t.Fatal("Reset should disarm and clear")
	}
}
