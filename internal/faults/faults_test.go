package faults

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/budget"
)

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	Inject("phase1.Run", "", nil) // must not panic or block
}

func TestPanicAction(t *testing.T) {
	t.Cleanup(Reset)
	Set("site", Panic("boom"))
	err := budget.Guard(func() { Inject("site", "", nil) })
	var pe *budget.PanicError
	if !errors.As(err, &pe) || !strings.Contains(pe.Value, "boom") {
		t.Fatalf("err = %v, want injected panic", err)
	}
	// One-shot: the second hit passes through.
	if err := budget.Guard(func() { Inject("site", "", nil) }); err != nil {
		t.Fatalf("second hit fired: %v", err)
	}
}

func TestDetailFilter(t *testing.T) {
	t.Cleanup(Reset)
	a := Panic("boom").For("g")
	Set("site", a)
	if err := budget.Guard(func() { Inject("site", "f", nil) }); err != nil {
		t.Fatalf("non-matching detail fired: %v", err)
	}
	if err := budget.Guard(func() { Inject("site", "g", nil) }); err == nil {
		t.Fatalf("matching detail did not fire")
	}
	if a.Hits() != 1 {
		t.Fatalf("Hits = %d", a.Hits())
	}
}

func TestStallAbortsOnCancel(t *testing.T) {
	t.Cleanup(Reset)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	b := budget.New(ctx, 0)
	Set("site", Stall(30*time.Second))
	start := time.Now()
	err := budget.Guard(func() { Inject("site", "", b) })
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("stall ignored cancellation")
	}
}

func TestStallTimesOutWithoutBudget(t *testing.T) {
	t.Cleanup(Reset)
	Set("site", Stall(10*time.Millisecond))
	if err := budget.Guard(func() { Inject("site", "", nil) }); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestExhaustBudget(t *testing.T) {
	t.Cleanup(Reset)
	b := budget.New(nil, 1_000_000)
	Set("site", ExhaustBudget())
	err := budget.Guard(func() { Inject("site", "", b) })
	if !errors.Is(err, budget.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}
