// Package faults is a deterministic failpoint registry for tests. The
// analysis pipeline calls Inject(site, detail, b) at a handful of named
// sites; in production nothing is registered and the call is a single
// atomic load. Tests arm the registry and attach an Action — a panic, a
// stall, or a forced budget exhaustion — to a site, optionally filtered
// to one detail value (e.g. a single function name), to prove that the
// containment and cancellation machinery holds: a stalled analysis must
// hit its deadline and free its worker slot, a panicking function must
// become a structured diagnostic with partial results, an exhausted
// budget must surface as a typed ErrBudget.
//
// Sites currently instrumented (site → detail):
//
//	phase2.AnalyzeFunc  → function name   (per-function array analysis)
//	phase2.analyzeLoop  → loop label      (per-loop Phase-1+aggregation step)
//	phase1.Run          → ""              (CFG symbolic execution entry)
//	depend.Analyze      → loop label      (per-nest dependence test)
//
// Actions are one-shot by default (Count=1) so an injected panic hits a
// single function of a batch; Times(n) widens that, Forever() removes
// the limit.
//
// Beyond the pipeline kinds above, the fleet layer (PR 9) registers
// *named-mode* failpoints with Mode and consumes them with Fire: the
// call site asks "is a fault armed here, and which one?" and interprets
// the mode string itself. Sites currently instrumented this way:
//
//	server.peerfill → node name  (fill serving: "stall", "drop", "5xx")
//	store.write     → cache key  ("crash": die mid-write, before rename)
//	store.read      → cache key  ("corrupt": treat the entry as damaged)
//
// List reports every registered failpoint and whether the registry is
// armed; the daemon surfaces it under /v1/stats so operators (and the
// chaos suite) can verify what is armed on a live process.
package faults

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
)

// armed short-circuits Inject in production: no test has called Arm, so
// every Inject is one atomic load and a branch.
var armed atomic.Bool

type kind int

const (
	kindPanic kind = iota
	kindStall
	kindExhaust
	kindMode
)

func (k kind) String() string {
	switch k {
	case kindPanic:
		return "panic"
	case kindStall:
		return "stall"
	case kindExhaust:
		return "exhaust-budget"
	case kindMode:
		return "mode"
	}
	return "unknown"
}

// Action is a registered fault: what to do when an armed site is hit.
type Action struct {
	kind    kind
	msg     string
	maxWait time.Duration
	detail  string
	left    atomic.Int64
	hits    atomic.Int64
}

// Panic returns an action that panics with msg at the site.
func Panic(msg string) *Action {
	a := &Action{kind: kindPanic, msg: msg}
	a.left.Store(1)
	return a
}

// Stall returns an action that blocks until the analysis budget is
// canceled (then aborts via the budget) or maxWait elapses, whichever is
// first. With a nil/non-cancellable budget it simply sleeps maxWait.
func Stall(maxWait time.Duration) *Action {
	a := &Action{kind: kindStall, maxWait: maxWait}
	a.left.Store(1)
	return a
}

// ExhaustBudget returns an action that marks the budget as spent, so the
// very next charge aborts with budget.ErrBudget.
func ExhaustBudget() *Action {
	a := &Action{kind: kindExhaust}
	a.left.Store(1)
	return a
}

// Mode returns a named-mode action for sites consumed with Fire: the
// registry only delivers the mode string, and the call site decides what
// "drop" or "crash" means there.
func Mode(mode string) *Action {
	a := &Action{kind: kindMode, msg: mode}
	a.left.Store(1)
	return a
}

// For restricts the action to hits whose detail matches (e.g. one
// function name). Returns the action for chaining.
func (a *Action) For(detail string) *Action {
	a.detail = detail
	return a
}

// Times sets how many matching hits trigger the action (default 1).
func (a *Action) Times(n int64) *Action {
	a.left.Store(n)
	return a
}

// Forever removes the hit limit.
func (a *Action) Forever() *Action {
	a.left.Store(1 << 62)
	return a
}

// Hits reports how many times the action actually fired.
func (a *Action) Hits() int64 { return a.hits.Load() }

var (
	mu       sync.Mutex
	registry = map[string]*Action{}
)

// Set arms the registry and attaches a to site, replacing any previous
// action there. Call Reset (usually via t.Cleanup) when done.
func Set(site string, a *Action) {
	mu.Lock()
	registry[site] = a
	mu.Unlock()
	armed.Store(true)
}

// Reset disarms the registry and removes every action.
func Reset() {
	mu.Lock()
	registry = map[string]*Action{}
	mu.Unlock()
	armed.Store(false)
}

// Inject is the failpoint hook compiled into the pipeline. It is a no-op
// unless a test has armed the registry and attached a matching action to
// this site. b may be nil (site has no budget in scope).
func Inject(site, detail string, b *budget.B) {
	if !armed.Load() {
		return
	}
	mu.Lock()
	a := registry[site]
	mu.Unlock()
	if a == nil || (a.detail != "" && a.detail != detail) {
		return
	}
	if a.left.Add(-1) < 0 {
		return
	}
	a.hits.Add(1)
	switch a.kind {
	case kindPanic:
		panic("fault injected: " + a.msg)
	case kindStall:
		select {
		case <-b.Done():
			// Canceled mid-stall: abort through the budget so the usual
			// Abort/Guard path reports ErrCanceled.
			b.PollCtx()
		case <-time.After(a.maxWait):
		}
	case kindExhaust:
		b.Exhaust()
		b.Step(1)
	}
}

// Fire reports the mode armed at site (via Set with a Mode action) whose
// detail filter matches, consuming one hit. It returns ("", false) when
// the registry is disarmed, the site has no Mode action, the detail does
// not match, or the hit budget is spent — so production call sites pay
// one atomic load, exactly like Inject.
func Fire(site, detail string) (string, bool) {
	if !armed.Load() {
		return "", false
	}
	mu.Lock()
	a := registry[site]
	mu.Unlock()
	if a == nil || a.kind != kindMode || (a.detail != "" && a.detail != detail) {
		return "", false
	}
	if a.left.Add(-1) < 0 {
		return "", false
	}
	a.hits.Add(1)
	return a.msg, true
}

// Info describes one registered failpoint for List.
type Info struct {
	// Site is the instrumented site the action is attached to.
	Site string `json:"site"`
	// Kind is the action kind ("panic", "stall", "exhaust-budget", "mode").
	Kind string `json:"kind"`
	// Mode is the mode string for "mode" actions (empty otherwise).
	Mode string `json:"mode,omitempty"`
	// Detail is the detail filter, empty when the action matches any hit.
	Detail string `json:"detail,omitempty"`
	// Remaining is how many further matching hits will trigger (negative
	// values are reported as 0).
	Remaining int64 `json:"remaining"`
	// Hits is how many times the action has fired.
	Hits int64 `json:"hits"`
}

// Armed reports whether any failpoint is currently registered.
func Armed() bool { return armed.Load() }

// List returns every registered failpoint, sorted by site, so the armed
// state of a live process is inspectable (surfaced on /v1/stats).
func List() []Info {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Info, 0, len(registry))
	for site, a := range registry {
		info := Info{
			Site:      site,
			Kind:      a.kind.String(),
			Detail:    a.detail,
			Remaining: max(a.left.Load(), 0),
			Hits:      a.hits.Load(),
		}
		if a.kind == kindMode {
			info.Mode = a.msg
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}
