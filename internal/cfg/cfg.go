// Package cfg builds the control-flow graph of a loop body used by the
// Phase-1 symbolic execution (Section 2.3). The loop body of a normalized,
// eligible loop is a directed acyclic graph: straight-line statements,
// if/else diamonds, and inner loops collapsed into a single node. Nodes are
// created in a topological order, so a forward dataflow pass can simply
// iterate the node list.
package cfg

import (
	"fmt"
	"strings"

	"repro/internal/cminus"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds.
const (
	NEntry NodeKind = iota
	NExit
	NStmt   // an assignment, declaration or expression statement
	NBranch // an if condition; true edge then false edge
	NMerge  // a join point after an if/else
	NLoop   // a collapsed inner loop
)

func (k NodeKind) String() string {
	switch k {
	case NEntry:
		return "entry"
	case NExit:
		return "exit"
	case NStmt:
		return "stmt"
	case NBranch:
		return "branch"
	case NMerge:
		return "merge"
	case NLoop:
		return "loop"
	}
	return "?"
}

// Edge condition values.
const (
	EdgeAlways = -1
	EdgeFalse  = 0
	EdgeTrue   = 1
)

// Node is a CFG node.
type Node struct {
	ID   int
	Kind NodeKind
	// Stmt is the statement for NStmt nodes and the *cminus.ForStmt (or
	// *cminus.WhileStmt) for NLoop nodes.
	Stmt cminus.Stmt
	// Cond is the branch condition for NBranch nodes.
	Cond  cminus.Expr
	Succs []*Edge
	Preds []*Edge
}

// Edge is a directed CFG edge; Cond is EdgeAlways, EdgeTrue or EdgeFalse.
type Edge struct {
	From, To *Node
	Cond     int
}

// Graph is the CFG of one loop body. Nodes appear in topological order.
type Graph struct {
	Nodes []*Node
	Entry *Node
	Exit  *Node
}

// Build constructs the CFG for a normalized loop body. It returns an error
// for constructs that break the DAG property or the analysis' assumptions
// (continue statements).
func Build(body *cminus.Block) (*Graph, error) {
	g := &Graph{}
	g.Entry = g.newNode(NEntry)
	cur := []*exitPoint{{node: g.Entry, cond: EdgeAlways}}
	var err error
	cur, err = g.addBlock(body, cur)
	if err != nil {
		return nil, err
	}
	g.Exit = g.newNode(NExit)
	g.connect(cur, g.Exit)
	return g, nil
}

// exitPoint is a dangling edge source waiting to be connected.
type exitPoint struct {
	node *Node
	cond int
}

func (g *Graph) newNode(kind NodeKind) *Node {
	n := &Node{ID: len(g.Nodes), Kind: kind}
	g.Nodes = append(g.Nodes, n)
	return n
}

func (g *Graph) connect(srcs []*exitPoint, to *Node) {
	for _, s := range srcs {
		e := &Edge{From: s.node, To: to, Cond: s.cond}
		s.node.Succs = append(s.node.Succs, e)
		to.Preds = append(to.Preds, e)
	}
}

func (g *Graph) addBlock(blk *cminus.Block, in []*exitPoint) ([]*exitPoint, error) {
	cur := in
	for _, s := range blk.Stmts {
		var err error
		cur, err = g.addStmt(s, cur)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

func (g *Graph) addStmt(s cminus.Stmt, in []*exitPoint) ([]*exitPoint, error) {
	switch x := s.(type) {
	case *cminus.AssignStmt, *cminus.DeclStmt, *cminus.ExprStmt:
		n := g.newNode(NStmt)
		n.Stmt = s
		g.connect(in, n)
		return []*exitPoint{{node: n, cond: EdgeAlways}}, nil
	case *cminus.IfStmt:
		br := g.newNode(NBranch)
		br.Cond = x.Cond
		g.connect(in, br)
		thenOut, err := g.addBlock(x.Then, []*exitPoint{{node: br, cond: EdgeTrue}})
		if err != nil {
			return nil, err
		}
		elseIn := []*exitPoint{{node: br, cond: EdgeFalse}}
		elseOut := elseIn
		if x.Else != nil {
			switch e := x.Else.(type) {
			case *cminus.Block:
				elseOut, err = g.addBlock(e, elseIn)
			default:
				elseOut, err = g.addStmt(e, elseIn)
			}
			if err != nil {
				return nil, err
			}
		}
		m := g.newNode(NMerge)
		g.connect(append(thenOut, elseOut...), m)
		return []*exitPoint{{node: m, cond: EdgeAlways}}, nil
	case *cminus.ForStmt, *cminus.WhileStmt:
		n := g.newNode(NLoop)
		n.Stmt = s
		g.connect(in, n)
		return []*exitPoint{{node: n, cond: EdgeAlways}}, nil
	case *cminus.Block:
		return g.addBlock(x, in)
	case *cminus.ContinueStmt:
		return nil, fmt.Errorf("cfg: continue statement at %s is not supported", x.Pos())
	case *cminus.BreakStmt:
		return nil, fmt.Errorf("cfg: break statement at %s breaks the DAG property", x.Pos())
	case *cminus.ReturnStmt:
		return nil, fmt.Errorf("cfg: return statement at %s breaks the DAG property", x.Pos())
	}
	return in, nil
}

// TopoOrder returns the nodes in topological order. Construction order is
// topological by design; this validates the invariant in debug scenarios.
func (g *Graph) TopoOrder() []*Node { return g.Nodes }

// String renders the CFG for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "%d:%s", n.ID, n.Kind)
		switch {
		case n.Kind == NStmt || n.Kind == NLoop:
			label := strings.TrimSpace(cminus.PrintStmt(n.Stmt))
			if i := strings.IndexByte(label, '\n'); i >= 0 {
				label = label[:i] + " ..."
			}
			fmt.Fprintf(&b, " [%s]", label)
		case n.Kind == NBranch:
			fmt.Fprintf(&b, " [if %s]", cminus.PrintExpr(n.Cond))
		}
		b.WriteString(" ->")
		for _, e := range n.Succs {
			switch e.Cond {
			case EdgeTrue:
				fmt.Fprintf(&b, " %d(T)", e.To.ID)
			case EdgeFalse:
				fmt.Fprintf(&b, " %d(F)", e.To.ID)
			default:
				fmt.Fprintf(&b, " %d", e.To.ID)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
