package cfg

import (
	"testing"

	"repro/internal/cminus"
	"repro/internal/normalize"
)

func loopBody(t *testing.T, src, fname string) *cminus.Block {
	t.Helper()
	prog := cminus.MustParse(src)
	res := normalize.Func(prog.Func(fname))
	var loop *cminus.ForStmt
	cminus.WalkStmts(res.Func.Body, func(s cminus.Stmt) bool {
		if f, ok := s.(*cminus.ForStmt); ok && loop == nil {
			loop = f
			return false
		}
		return true
	})
	if loop == nil {
		t.Fatal("no loop")
	}
	return loop.Body
}

// TestFig5Shape checks the CFG of the paper's Figure 5: the normalized
// Figure 4(b) loop body is branch -> (temp save; incr; store) -> merge.
func TestFig5Shape(t *testing.T) {
	src := `
void f(int npts, double *xdos, double t, double width, int *ind) {
    int m = 0;
    int j;
    for (j = 0; j < npts; j++) {
        if ((xdos[j] - t) < width)
            ind[m++] = j;
    }
}
`
	g, err := Build(loopBody(t, src, "f"))
	if err != nil {
		t.Fatal(err)
	}
	var kinds []NodeKind
	for _, n := range g.Nodes {
		kinds = append(kinds, n.Kind)
	}
	// entry, branch, decl(_temp_0), _temp_0=m, m=m+1, ind[_temp_0]=j, merge, exit
	want := []NodeKind{NEntry, NBranch, NStmt, NStmt, NStmt, NStmt, NMerge, NExit}
	if len(kinds) != len(want) {
		t.Fatalf("got %d nodes (%v), want %d\n%s", len(kinds), kinds, len(want), g)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("node %d: %s, want %s\n%s", i, kinds[i], want[i], g)
		}
	}
	// The branch's false edge must go straight to the merge.
	br := g.Nodes[1]
	var falseTo *Node
	for _, e := range br.Succs {
		if e.Cond == EdgeFalse {
			falseTo = e.To
		}
	}
	if falseTo == nil || falseTo.Kind != NMerge {
		t.Fatalf("false edge should reach merge\n%s", g)
	}
}

func TestTopoOrderIsForward(t *testing.T) {
	src := `
void f(int n, int *a, int *b) {
    int i, x;
    for (i = 0; i < n; i++) {
        x = a[i];
        if (x > 0) {
            b[i] = x;
        } else {
            if (x < -10) {
                b[i] = -x;
            }
            b[i] = 0;
        }
        a[i] = b[i];
    }
}
`
	g, err := Build(loopBody(t, src, "f"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		for _, e := range n.Succs {
			if e.To.ID <= n.ID {
				t.Fatalf("edge %d->%d is not forward\n%s", n.ID, e.To.ID, g)
			}
		}
	}
	if g.Entry.ID != 0 || g.Exit.ID != len(g.Nodes)-1 {
		t.Error("entry/exit placement")
	}
}

func TestInnerLoopCollapses(t *testing.T) {
	src := `
void f(int n, int m, int *a) {
    int i, j, p;
    p = 0;
    for (i = 0; i < n; i++) {
        a[i] = p;
        for (j = 0; j < m; j++) {
            if (a[j] > 0) {
                p = p + 1;
            }
        }
    }
}
`
	g, err := Build(loopBody(t, src, "f"))
	if err != nil {
		t.Fatal(err)
	}
	var loops int
	for _, n := range g.Nodes {
		if n.Kind == NLoop {
			loops++
		}
	}
	if loops != 1 {
		t.Fatalf("inner loop should be one collapsed node, got %d\n%s", loops, g)
	}
}

func TestBreakRejected(t *testing.T) {
	blk := &cminus.Block{Stmts: []cminus.Stmt{&cminus.BreakStmt{}}}
	if _, err := Build(blk); err == nil {
		t.Error("break should be rejected")
	}
	blk2 := &cminus.Block{Stmts: []cminus.Stmt{&cminus.ContinueStmt{}}}
	if _, err := Build(blk2); err == nil {
		t.Error("continue should be rejected")
	}
}
