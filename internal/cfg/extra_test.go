package cfg

import (
	"strings"
	"testing"

	"repro/internal/cminus"
)

func TestStringRendering(t *testing.T) {
	prog := cminus.MustParse(`
void f(int n, int *a) {
    int i;
    for (i = 0; i < n; i++) {
        if (a[i] > 0) {
            a[i] = 0;
        }
    }
}
`)
	var loop *cminus.ForStmt
	cminus.WalkStmts(prog.Funcs[0].Body, func(s cminus.Stmt) bool {
		if f, ok := s.(*cminus.ForStmt); ok {
			loop = f
		}
		return true
	})
	g, err := Build(loop.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := g.String()
	for _, want := range []string{"entry", "branch [if a[i] > 0]", "(T)", "(F)", "exit"} {
		if !strings.Contains(out, want) {
			t.Errorf("CFG rendering missing %q:\n%s", want, out)
		}
	}
	if g.TopoOrder()[0] != g.Entry {
		t.Error("topo order starts at entry")
	}
}

func TestElseIfChain(t *testing.T) {
	prog := cminus.MustParse(`
void f(int x, int *a) {
    if (x > 10) {
        a[0] = 1;
    } else if (x > 5) {
        a[0] = 2;
    } else {
        a[0] = 3;
    }
}
`)
	g, err := Build(prog.Funcs[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	branches, merges := 0, 0
	for _, n := range g.Nodes {
		switch n.Kind {
		case NBranch:
			branches++
		case NMerge:
			merges++
		}
	}
	if branches != 2 || merges != 2 {
		t.Errorf("branches=%d merges=%d\n%s", branches, merges, g)
	}
}

func TestReturnRejected(t *testing.T) {
	blk := &cminus.Block{Stmts: []cminus.Stmt{&cminus.ReturnStmt{}}}
	if _, err := Build(blk); err == nil {
		t.Error("return should be rejected")
	}
}

func TestWhileCollapsesToNode(t *testing.T) {
	prog := cminus.MustParse(`
void f(int n, int *a) {
    int i;
    i = 0;
    while (i < n) {
        i = i + 1;
    }
    a[0] = i;
}
`)
	g, err := Build(prog.Funcs[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	loops := 0
	for _, n := range g.Nodes {
		if n.Kind == NLoop {
			loops++
		}
	}
	if loops != 1 {
		t.Errorf("while should be one collapsed node:\n%s", g)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[NodeKind]string{
		NEntry: "entry", NExit: "exit", NStmt: "stmt",
		NBranch: "branch", NMerge: "merge", NLoop: "loop",
	} {
		if k.String() != want {
			t.Errorf("%d: %s", k, k.String())
		}
	}
}
