// Package simcore is a deterministic multicore execution-time simulator.
//
// The paper's evaluation runs on a 20-core Xeon; this reproduction runs in
// a container with 2 cores, so the 4/8/16-core series of Figures 13-16 are
// produced by this model instead of wall-clock measurement (see DESIGN.md
// §4.3). The model is a work-span simulation over measured per-iteration
// costs: it reproduces exactly the effects the paper attributes its shapes
// to — fork-join overhead multiplied by outer-iteration count for
// inner-loop parallelization, load imbalance under static scheduling of
// skewed sparse structures, and scheduling-policy differences — while real
// goroutine execution (internal/sched) validates correctness and provides
// the calibration constants.
//
// Costs are in abstract work units; the calibration maps units to seconds
// via a measured serial rate, and fork-join/dispatch overheads via
// sched.MeasureForkJoin.
package simcore

import "repro/internal/sched"

// Machine is a simulated multicore.
type Machine struct {
	// Cores is the simulated core count.
	Cores int
	// ForkJoin is the cost (work units) to launch and join one parallel
	// region.
	ForkJoin float64
	// Dispatch is the per-chunk cost (work units) a worker pays to grab
	// work under dynamic scheduling.
	Dispatch float64
	// MemSat is the core count at which the socket's memory bandwidth
	// saturates: the memory-bound fraction of a kernel's work speeds up
	// by at most min(Cores, MemSat). Typical sockets saturate around 3-4
	// cores; 0 means unlimited bandwidth.
	MemSat float64
}

// memScale returns the effective parallelism available to memory-bound
// work.
func (m Machine) memScale() float64 {
	if m.MemSat <= 0 {
		return float64(m.Cores)
	}
	if float64(m.Cores) < m.MemSat {
		return float64(m.Cores)
	}
	return m.MemSat
}

// RooflineTime combines a compute makespan (which scales with cores and
// scheduling) with a memory-bound floor (which scales only to bandwidth
// saturation): for a kernel whose fraction memFrac of work is
// memory-bandwidth-limited,
//
//	T = (1-f)·makespan + f·totalWork/min(P, MemSat)
//
// (the fork-join charge stays with the caller's makespan composition).
func (m Machine) RooflineTime(makespan, totalWork, memFrac float64) float64 {
	if memFrac < 0 {
		memFrac = 0
	}
	if memFrac > 1 {
		memFrac = 1
	}
	return (1-memFrac)*makespan + memFrac*totalWork/m.memScale()
}

// SerialTime is the serial execution time: the sum of all costs.
func SerialTime(costs []float64) float64 {
	var s float64
	for _, c := range costs {
		s += c
	}
	return s
}

// StaticTime simulates an OpenMP static schedule: contiguous blocks of
// ceil(n/P) iterations per core; region time is the maximum per-core sum
// plus one fork-join.
func (m Machine) StaticTime(costs []float64) float64 {
	n := len(costs)
	if n == 0 {
		return 0
	}
	p := m.Cores
	if p > n {
		p = n
	}
	if p <= 1 {
		return SerialTime(costs)
	}
	per := (n + p - 1) / p
	var worst float64
	for start := 0; start < n; start += per {
		end := start + per
		if end > n {
			end = n
		}
		var sum float64
		for _, c := range costs[start:end] {
			sum += c
		}
		if sum > worst {
			worst = sum
		}
	}
	return m.ForkJoin + worst
}

// DynamicTime simulates a dynamic schedule with the given chunk size:
// idle workers repeatedly grab the next chunk (greedy list scheduling).
// Chunk handout serializes on the scheduler's lock and its cost grows
// with the number of contending cores (cache-line bouncing), so the
// effective per-grab cost is Dispatch·max(1, P/2). This is what makes
// dynamic scheduling lose on well-balanced inputs (the paper's af_shell1
// case in Figure 16) while winning on skewed ones.
func (m Machine) DynamicTime(costs []float64, chunk int) float64 {
	n := len(costs)
	if n == 0 {
		return 0
	}
	if chunk <= 0 {
		chunk = 1
	}
	p := m.Cores
	if p > n {
		p = n
	}
	if p <= 1 {
		return SerialTime(costs) + m.Dispatch*float64((n+chunk-1)/chunk)
	}
	grab := m.Dispatch * float64(p) / 2
	if grab < m.Dispatch {
		grab = m.Dispatch
	}
	// Greedy: assign each chunk to the earliest-free worker, serializing
	// the grabs through the scheduler lock.
	free := make([]float64, p)
	var lockFree float64
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		var sum float64
		for _, c := range costs[start:end] {
			sum += c
		}
		// Earliest-free worker.
		w := 0
		for i := 1; i < p; i++ {
			if free[i] < free[w] {
				w = i
			}
		}
		startAt := free[w]
		if lockFree > startAt {
			startAt = lockFree
		}
		lockFree = startAt + grab
		free[w] = startAt + grab + sum
	}
	var worst float64
	for _, f := range free {
		if f > worst {
			worst = f
		}
	}
	return m.ForkJoin + worst
}

// Schedule selects between StaticTime and DynamicTime.
func (m Machine) Schedule(policy sched.Policy, costs []float64, chunk int) float64 {
	if policy == sched.Dynamic {
		return m.DynamicTime(costs, chunk)
	}
	return m.StaticTime(costs)
}

// InnerParallelTime simulates parallelizing the *inner* loop of a nest:
// every outer iteration pays a full fork-join around its inner work, which
// is divided across cores (the paper's explanation for the Figure 13
// anomaly: "substantial fork-join overhead due to the creation and
// termination of threads for each iteration of the outer loop").
// innerCosts[i] is the total inner work of outer iteration i; innerTrips
// is the inner iteration count (bounding achievable parallelism).
func (m Machine) InnerParallelTime(innerCosts []float64, innerTrips []int, serialPrefix []float64) float64 {
	var t float64
	for i, c := range innerCosts {
		p := m.Cores
		if innerTrips != nil && i < len(innerTrips) && innerTrips[i] < p {
			p = innerTrips[i]
		}
		if p < 1 {
			p = 1
		}
		if serialPrefix != nil && i < len(serialPrefix) {
			t += serialPrefix[i]
		}
		if p == 1 {
			t += c
			continue
		}
		t += m.ForkJoin + c/float64(p)
	}
	return t
}

// Speedup is serial/parallel.
func Speedup(serial, parallel float64) float64 {
	if parallel <= 0 {
		return 0
	}
	return serial / parallel
}

// Efficiency is speedup divided by core count.
func (m Machine) Efficiency(serial, parallel float64) float64 {
	return Speedup(serial, parallel) / float64(m.Cores)
}

// Calibration converts work units to seconds and holds measured
// overheads.
type Calibration struct {
	// SecondsPerUnit is the measured serial execution rate.
	SecondsPerUnit float64
	// ForkJoinUnits is the measured fork-join overhead in work units.
	ForkJoinUnits float64
	// DispatchUnits is the per-chunk dynamic dispatch overhead in units.
	DispatchUnits float64
}

// MemSatCores is the default bandwidth-saturation point (cores): a
// typical dual-socket Xeon's per-socket bandwidth saturates around 3-4
// streaming cores.
const MemSatCores = 3.0

// NewMachine builds a simulated machine from a calibration.
func (c Calibration) NewMachine(cores int) Machine {
	return Machine{Cores: cores, ForkJoin: c.ForkJoinUnits, Dispatch: c.DispatchUnits, MemSat: MemSatCores}
}
