package simcore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

func uniformCosts(n int, c float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = c
	}
	return out
}

func TestSerialTime(t *testing.T) {
	if got := SerialTime(uniformCosts(10, 2)); got != 20 {
		t.Errorf("got %g", got)
	}
	if got := SerialTime(nil); got != 0 {
		t.Errorf("empty: %g", got)
	}
}

func TestStaticPerfectBalance(t *testing.T) {
	m := Machine{Cores: 4, ForkJoin: 0}
	// 100 uniform iterations on 4 cores: 25 per core.
	if got := m.StaticTime(uniformCosts(100, 1)); got != 25 {
		t.Errorf("got %g", got)
	}
}

func TestStaticImbalance(t *testing.T) {
	m := Machine{Cores: 2, ForkJoin: 0}
	// All the work in the first half: static chunking puts it on core 0.
	costs := make([]float64, 100)
	for i := 0; i < 50; i++ {
		costs[i] = 2
	}
	if got := m.StaticTime(costs); got != 100 {
		t.Errorf("static imbalance: got %g, want 100", got)
	}
	// Dynamic chunk-1 balances it: ~50 per core.
	d := m.DynamicTime(costs, 1)
	if d > 60 {
		t.Errorf("dynamic should balance: got %g", d)
	}
}

func TestForkJoinCharged(t *testing.T) {
	m := Machine{Cores: 4, ForkJoin: 1000}
	got := m.StaticTime(uniformCosts(4, 1))
	if got != 1001 {
		t.Errorf("got %g", got)
	}
}

// TestInnerParallelAnomaly reproduces the Figure 13 anomaly mechanism:
// parallelizing small inner loops is slower than serial, while outer
// parallelization scales.
func TestInnerParallelAnomaly(t *testing.T) {
	m := Machine{Cores: 8, ForkJoin: 500}
	nOuter := 1000
	inner := uniformCosts(nOuter, 30) // 30 units of inner work per outer iter
	trips := make([]int, nOuter)
	for i := range trips {
		trips[i] = 30
	}
	serial := SerialTime(inner)
	innerPar := m.InnerParallelTime(inner, trips, nil)
	outerPar := m.StaticTime(inner)
	if innerPar <= serial {
		t.Errorf("inner-parallel should be slower than serial: %g vs %g", innerPar, serial)
	}
	if outerPar >= serial {
		t.Errorf("outer-parallel should beat serial: %g vs %g", outerPar, serial)
	}
	improvement := innerPar / outerPar
	if improvement < 10 {
		t.Errorf("expected an order-of-magnitude gap, got %.1fx", improvement)
	}
}

// TestQuickMakespanBounds: for any cost vector, the simulated parallel
// time is at least max(work/P, max cost) and at most work + overheads
// (list-scheduling bounds).
func TestQuickMakespanBounds(t *testing.T) {
	f := func(seed int64, coresRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cores := int(coresRaw%15) + 2
		n := 1 + rng.Intn(200)
		costs := make([]float64, n)
		var work, maxc float64
		for i := range costs {
			costs[i] = rng.Float64() * 100
			work += costs[i]
			if costs[i] > maxc {
				maxc = costs[i]
			}
		}
		m := Machine{Cores: cores, ForkJoin: 0, Dispatch: 0}
		lower := work / float64(cores)
		if maxc > lower {
			lower = maxc
		}
		st := m.StaticTime(costs)
		dt := m.DynamicTime(costs, 1)
		const eps = 1e-9
		if st < lower-eps || dt < lower-eps {
			return false
		}
		return st <= work+eps && dt <= work+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDynamicBeatsStaticOnSkew: under front-loaded skew, dynamic
// chunk-1 is never worse than static (both with zero overheads).
func TestQuickDynamicBeatsStaticOnSkew(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(100)
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = rng.Float64()
			if i < n/4 {
				costs[i] *= 20 // front-loaded heavy work
			}
		}
		m := Machine{Cores: 4}
		return m.DynamicTime(costs, 1) <= m.StaticTime(costs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEfficiency(t *testing.T) {
	m := Machine{Cores: 4}
	if got := m.Efficiency(100, 25); got != 1.0 {
		t.Errorf("perfect efficiency: %g", got)
	}
	if got := m.Efficiency(100, 50); got != 0.5 {
		t.Errorf("half efficiency: %g", got)
	}
	if Speedup(100, 0) != 0 {
		t.Error("zero parallel time guards")
	}
}

func TestScheduleDispatch(t *testing.T) {
	m := Machine{Cores: 2, Dispatch: 5}
	costs := uniformCosts(10, 1)
	st := m.Schedule(sched.Static, costs, 1)
	dt := m.Schedule(sched.Dynamic, costs, 1)
	if dt <= st {
		t.Errorf("dispatch overhead should make dynamic slower on uniform work: %g vs %g", dt, st)
	}
}

func TestCalibrationMachine(t *testing.T) {
	c := Calibration{SecondsPerUnit: 1e-9, ForkJoinUnits: 100, DispatchUnits: 3}
	m := c.NewMachine(16)
	if m.Cores != 16 || m.ForkJoin != 100 || m.Dispatch != 3 {
		t.Errorf("%+v", m)
	}
}
