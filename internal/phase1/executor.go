package phase1

import (
	"repro/internal/cminus"
	"repro/internal/symbolic"
)

// executor applies statements symbolically to an SVD state.
type executor struct {
	cf  *Config
	lvv map[string]bool
}

// applyStmt updates st with the effect of a straight-line statement
// executed under path condition cond (nil = unconditional).
func (ex *executor) applyStmt(st *State, s cminus.Stmt, cond symbolic.Expr) {
	switch x := s.(type) {
	case *cminus.DeclStmt:
		// Body-local declarations (normalization temps): fresh λ values.
		for _, it := range x.Items {
			if len(it.Dims) == 0 && it.PtrDeep == 0 {
				st.Scalars[it.Name] = symbolic.NewLambda(it.Name)
			}
		}
	case *cminus.AssignStmt:
		if id, ok := x.LHS.(*cminus.Ident); ok {
			val := ex.evalExpr(st, x.RHS)
			if cond != nil {
				val = tagValue(val, cond)
			}
			st.Scalars[id.Name] = val
			return
		}
		if name, idxExprs, ok := cminus.ArrayBase(x.LHS); ok {
			val := ex.evalExpr(st, x.RHS)
			indices := make([]symbolic.Expr, len(idxExprs))
			for i, ie := range idxExprs {
				indices[i] = symbolic.StripTags(ex.evalExpr(st, ie))
			}
			ex.recordWrite(st, name, indices, val, cond)
			return
		}
		// Unsupported LHS (pointer dereference etc.): unknown effect.
	case *cminus.ExprStmt:
		// Pure calls have no effect on integer state.
	}
}

// tagValue wraps each alternative of val with the path condition.
func tagValue(val symbolic.Expr, cond symbolic.Expr) symbolic.Expr {
	if symbolic.IsBottom(val) {
		return val
	}
	var items []symbolic.Expr
	if s, ok := val.(symbolic.Set); ok {
		items = s.Items
	} else {
		items = []symbolic.Expr{val}
	}
	out := make([]symbolic.Expr, len(items))
	for i, it := range items {
		if t, ok := it.(symbolic.Tagged); ok {
			out[i] = symbolic.Tagged{
				Cond: symbolic.Simplify(symbolic.And{Conds: []symbolic.Expr{t.Cond, cond}}),
				E:    t.E,
			}
			continue
		}
		out[i] = symbolic.Tagged{Cond: cond, E: it}
	}
	return symbolic.NewSet(out...)
}

// recordWrite adds an array write to the state, merging with compatible
// existing writes: identical subscripts union their values; subscripts
// differing in exactly one constant dimension merge into a range (the
// paper's Figure 12 pattern where idel[iel][0..5][j][i] collapses to
// idel[iel][0:5][j][i]).
func (ex *executor) recordWrite(st *State, arr string, indices []symbolic.Expr, val symbolic.Expr, cond symbolic.Expr) {
	if cond != nil {
		val = symbolic.NewSet(symbolic.NewLambda(arr), tagValue(val, cond))
	}
	writes := st.Arrays[arr]
	// Exact subscript match: union values.
	newW := ArrayWrite{Indices: indices, Value: val}
	for i, w := range writes {
		if w.indexKey() == newW.indexKey() {
			writes[i].Value = symbolic.UnionValues(w.Value, val)
			st.Arrays[arr] = writes
			return
		}
	}
	// One-dimension constant merge.
	for i, w := range writes {
		if merged, ok := mergeOneDim(w, newW); ok {
			writes[i] = merged
			st.Arrays[arr] = writes
			return
		}
	}
	st.Arrays[arr] = append(writes, newW)
}

// mergeOneDim merges two writes whose subscripts agree in all but one
// dimension, where both are integer constants or constant ranges.
func mergeOneDim(a, b ArrayWrite) (ArrayWrite, bool) {
	if len(a.Indices) != len(b.Indices) {
		return ArrayWrite{}, false
	}
	diff := -1
	for i := range a.Indices {
		if a.Indices[i].String() == b.Indices[i].String() {
			continue
		}
		if diff >= 0 {
			return ArrayWrite{}, false
		}
		diff = i
	}
	if diff < 0 {
		return ArrayWrite{}, false
	}
	if !constOrConstRange(a.Indices[diff]) || !constOrConstRange(b.Indices[diff]) {
		return ArrayWrite{}, false
	}
	union := symbolic.RangeUnion(a.Indices[diff], b.Indices[diff])
	out := ArrayWrite{Indices: append([]symbolic.Expr(nil), a.Indices...)}
	out.Indices[diff] = union
	out.Value = symbolic.UnionValues(a.Value, b.Value)
	return out, true
}

func constOrConstRange(e symbolic.Expr) bool {
	if _, ok := symbolic.AsInt(e); ok {
		return true
	}
	if r, ok := e.(symbolic.Range); ok {
		_, lok := symbolic.AsInt(r.Lo)
		_, hok := symbolic.AsInt(r.Hi)
		return lok && hok
	}
	return false
}

// applyCollapsed replaces an inner loop node by the aggregated assignments
// from its Phase-2 collapse (Algorithm 1 lines 22-24). Λ_v markers in the
// collapsed expressions denote "value of v at inner loop entry" and are
// substituted with the current outer-iteration values; likewise plain
// symbols naming outer LVVs.
func (ex *executor) applyCollapsed(st *State, s cminus.Stmt, cond symbolic.Expr) {
	var label string
	var inner *CollapsedLoop
	if f, ok := s.(*cminus.ForStmt); ok {
		label = f.Label
		inner = ex.cf.Collapsed[label]
	}
	if inner == nil || inner.Failed {
		// Unknown effect: kill everything the loop assigns.
		if inner != nil {
			for _, v := range inner.Assigned {
				if ex.lvv[v] {
					st.Scalars[v] = symbolic.Bottom{}
				}
			}
			for arr := range inner.Arrays {
				st.Arrays[arr] = []ArrayWrite{{Value: symbolic.Bottom{}}}
			}
			return
		}
		if f, ok := s.(*cminus.ForStmt); ok {
			scalars, arrays := AssignedVars(f.Body, nil)
			for _, v := range scalars {
				st.Scalars[v] = symbolic.Bottom{}
			}
			for _, a := range arrays {
				st.Arrays[a] = []ArrayWrite{{Value: symbolic.Bottom{}}}
			}
		}
		if w, ok := s.(*cminus.WhileStmt); ok {
			scalars, arrays := AssignedVars(w.Body, nil)
			for _, v := range scalars {
				st.Scalars[v] = symbolic.Bottom{}
			}
			for _, a := range arrays {
				st.Arrays[a] = []ArrayWrite{{Value: symbolic.Bottom{}}}
			}
		}
		return
	}

	sub := ex.entrySubst(st)
	for v, r := range inner.Scalars {
		val := symbolic.Substitute(r, sub)
		if cond != nil {
			val = symbolic.UnionValues(st.Scalars[v], tagValue(val, cond))
		}
		st.Scalars[v] = val
	}
	for arr, ws := range inner.Arrays {
		for _, w := range ws {
			indices := make([]symbolic.Expr, len(w.Indices))
			for i, ix := range w.Indices {
				indices[i] = symbolic.Substitute(ix, sub)
			}
			val := symbolic.Substitute(w.Value, sub)
			ex.recordWrite(st, arr, indices, val, cond)
		}
	}
}

// entrySubst builds the substitution mapping inner-loop-entry markers to
// current outer values.
func (ex *executor) entrySubst(st *State) symbolic.Subst {
	sub := symbolic.Subst{}
	for v, val := range st.Scalars {
		sub[symbolic.BigLambdaKey(v)] = symbolic.StripTags(val)
		if ex.lvv[v] {
			sub[symbolic.SymKey(v)] = symbolic.StripTags(val)
		}
	}
	return sub
}

// evalExpr converts a mini-C expression to a symbolic value under the
// current state: LVVs read their current (possibly tagged) value,
// loop-invariant scalars become symbols, reads of loop-invariant arrays
// become opaque ArrayRef atoms, and floating-point values become ⊥ (the
// analysis reasons about integer values only).
func (ex *executor) evalExpr(st *State, e cminus.Expr) symbolic.Expr {
	switch x := e.(type) {
	case nil:
		return symbolic.Bottom{}
	case *cminus.IntLit:
		return symbolic.NewInt(x.Val)
	case *cminus.FloatLit:
		return symbolic.Bottom{}
	case *cminus.StringLit:
		return symbolic.Bottom{}
	case *cminus.Ident:
		if v, ok := st.Scalars[x.Name]; ok {
			return v
		}
		return symbolic.NewSym(x.Name)
	case *cminus.BinaryExpr:
		l := ex.evalExpr(st, x.X)
		r := ex.evalExpr(st, x.Y)
		switch x.Op {
		case "+":
			return symbolic.AddExpr(l, r)
		case "-":
			return symbolic.SubExpr(l, r)
		case "*":
			return symbolic.MulExpr(l, r)
		case "/":
			return symbolic.DivExpr(l, r)
		case "%":
			return symbolic.ModExpr(l, r)
		default:
			// Relational/logical/bitwise used as a value: 0/1, unknown.
			return symbolic.Bottom{}
		}
	case *cminus.UnaryExpr:
		switch x.Op {
		case "-":
			return symbolic.NegExpr(ex.evalExpr(st, x.X))
		case "+":
			return ex.evalExpr(st, x.X)
		}
		return symbolic.Bottom{}
	case *cminus.CondExpr:
		c := ex.evalCond(st, x.C)
		t := ex.evalExpr(st, x.T)
		f := ex.evalExpr(st, x.F)
		if symbolic.IsBottom(t) || symbolic.IsBottom(f) {
			return symbolic.Bottom{}
		}
		return symbolic.UnionValues(tagValue(t, c), tagValue(f, symbolic.Simplify(symbolic.Not{C: c})))
	case *cminus.IndexExpr:
		name, idxExprs, ok := cminus.ArrayBase(e)
		if !ok {
			return symbolic.Bottom{}
		}
		if _, written := st.Arrays[name]; written {
			// Reading an array already modified this iteration: unknown.
			return symbolic.Bottom{}
		}
		indices := make([]symbolic.Expr, len(idxExprs))
		for i, ie := range idxExprs {
			v := symbolic.StripTags(ex.evalExpr(st, ie))
			if _, isSet := v.(symbolic.Set); isSet || symbolic.IsBottom(v) {
				return symbolic.Bottom{}
			}
			indices[i] = v
		}
		return symbolic.ArrayRef{Name: name, Indices: indices}
	case *cminus.CallExpr:
		args := make([]symbolic.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = symbolic.StripTags(ex.evalExpr(st, a))
		}
		return symbolic.Call{Name: x.Fun, Args: args}
	case *cminus.CastExpr:
		return ex.evalExpr(st, x.X)
	}
	return symbolic.Bottom{}
}

// evalCond converts a mini-C condition to a symbolic boolean expression
// under the current state.
func (ex *executor) evalCond(st *State, e cminus.Expr) symbolic.Expr {
	switch x := e.(type) {
	case nil:
		return symbolic.BoolLit{Val: true}
	case *cminus.BinaryExpr:
		switch x.Op {
		case "&&":
			return symbolic.Simplify(symbolic.And{Conds: []symbolic.Expr{
				ex.evalCond(st, x.X), ex.evalCond(st, x.Y),
			}})
		case "||":
			return symbolic.Simplify(symbolic.Or{Conds: []symbolic.Expr{
				ex.evalCond(st, x.X), ex.evalCond(st, x.Y),
			}})
		case "==", "!=", "<", "<=", ">", ">=":
			op := map[string]symbolic.CmpOp{
				"==": symbolic.OpEQ, "!=": symbolic.OpNE,
				"<": symbolic.OpLT, "<=": symbolic.OpLE,
				">": symbolic.OpGT, ">=": symbolic.OpGE,
			}[x.Op]
			l := ex.evalCondOperand(st, x.X)
			r := ex.evalCondOperand(st, x.Y)
			return symbolic.Simplify(symbolic.Cmp{Op: op, L: l, R: r})
		}
	case *cminus.UnaryExpr:
		if x.Op == "!" {
			return symbolic.Simplify(symbolic.Not{C: ex.evalCond(st, x.X)})
		}
	}
	// A scalar used as a condition: e != 0.
	v := ex.evalCondOperand(st, e)
	return symbolic.Simplify(symbolic.Cmp{Op: symbolic.OpNE, L: v, R: symbolic.Zero})
}

// evalCondOperand evaluates a condition operand. Floating-point operands
// are kept as opaque structural expressions (rather than ⊥) so that equal
// source conditions produce equal tags — the property Algorithm 2 line 15
// tests.
func (ex *executor) evalCondOperand(st *State, e cminus.Expr) symbolic.Expr {
	v := symbolic.StripTags(ex.evalExpr(st, e))
	if !symbolic.IsBottom(v) {
		if _, isSet := v.(symbolic.Set); !isSet {
			return v
		}
	}
	return ex.opaqueExpr(st, e)
}

// opaqueExpr builds a structural symbolic rendering of an expression that
// could not be valued (floating point, modified-array reads): enough for
// tag equality and loop-variance checks.
func (ex *executor) opaqueExpr(st *State, e cminus.Expr) symbolic.Expr {
	switch x := e.(type) {
	case nil:
		return symbolic.Bottom{}
	case *cminus.IntLit:
		return symbolic.NewInt(x.Val)
	case *cminus.FloatLit:
		return symbolic.Call{Name: "flt", Args: []symbolic.Expr{symbolic.NewSym(x.Text)}}
	case *cminus.Ident:
		if v, ok := st.Scalars[x.Name]; ok {
			sv := symbolic.StripTags(v)
			if !symbolic.IsBottom(sv) {
				if _, isSet := sv.(symbolic.Set); !isSet {
					return sv
				}
			}
			return symbolic.NewLambda(x.Name)
		}
		return symbolic.NewSym(x.Name)
	case *cminus.BinaryExpr:
		return symbolic.Call{Name: "op" + x.Op, Args: []symbolic.Expr{
			ex.opaqueExpr(st, x.X), ex.opaqueExpr(st, x.Y),
		}}
	case *cminus.UnaryExpr:
		return symbolic.Call{Name: "op" + x.Op, Args: []symbolic.Expr{ex.opaqueExpr(st, x.X)}}
	case *cminus.IndexExpr:
		name, idxExprs, ok := cminus.ArrayBase(e)
		if !ok {
			return symbolic.Bottom{}
		}
		indices := make([]symbolic.Expr, len(idxExprs))
		for i, ie := range idxExprs {
			indices[i] = ex.opaqueExpr(st, ie)
		}
		return symbolic.ArrayRef{Name: name, Indices: indices}
	case *cminus.CallExpr:
		args := make([]symbolic.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = ex.opaqueExpr(st, a)
		}
		return symbolic.Call{Name: x.Fun, Args: args}
	case *cminus.CastExpr:
		return ex.opaqueExpr(st, x.X)
	}
	return symbolic.Bottom{}
}
