// Package phase1 implements Phase 1 of the subscripted-subscript array
// analysis (Section 2.3 of the paper): a forward symbolic execution of one
// arbitrary loop iteration over the loop-body CFG. It computes, for every
// Loop-Variant Variable (LVV), a symbolic value at the end of the iteration
// relative to its value λ_v at the beginning, stored in a Symbolic Value
// Dictionary (SVD). Values assigned under an if-condition are tagged ⟨e⟩
// with that condition; control-flow merges take the conservative union of
// predecessor values.
package phase1

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/budget"
	"repro/internal/cfg"
	"repro/internal/cminus"
	"repro/internal/faults"
	"repro/internal/normalize"
	"repro/internal/symbolic"
)

// ArrayWrite describes one symbolic write site of an array during the
// analyzed iteration: the subscript expressions (tag-stripped, in λ terms)
// and the value union (which includes λ_array when the write is
// conditional, meaning "may keep its old value").
type ArrayWrite struct {
	Indices []symbolic.Expr
	Value   symbolic.Expr
}

func (w ArrayWrite) indexKey() string {
	parts := make([]string, len(w.Indices))
	for i, ix := range w.Indices {
		parts[i] = ix.String()
	}
	return strings.Join(parts, ",")
}

// String renders the write in the paper's notation.
func (w ArrayWrite) String() string {
	var b strings.Builder
	for _, ix := range w.Indices {
		fmt.Fprintf(&b, "[%s]", ix)
	}
	fmt.Fprintf(&b, " = %s", w.Value)
	return b.String()
}

// CollapsedLoop is the result of Phase 2 for an inner loop: the loop node
// is replaced by assignments of the aggregated expressions (in Λ terms) to
// each LVV. A nil CollapsedLoop (or one with Failed set) kills the
// variables in Assigned.
type CollapsedLoop struct {
	Label    string
	Scalars  map[string]symbolic.Expr
	Arrays   map[string][]ArrayWrite
	Assigned []string
	// Failed marks a loop whose aggregation failed; its assignments kill.
	Failed bool
}

// State is the SVD at one CFG point.
type State struct {
	Scalars map[string]symbolic.Expr
	Arrays  map[string][]ArrayWrite
}

func newState() *State {
	return &State{Scalars: map[string]symbolic.Expr{}, Arrays: map[string][]ArrayWrite{}}
}

func (st *State) clone() *State {
	out := newState()
	for k, v := range st.Scalars {
		out.Scalars[k] = v
	}
	for k, v := range st.Arrays {
		out.Arrays[k] = append([]ArrayWrite(nil), v...)
	}
	return out
}

// String renders the SVD in the paper's notation, deterministically.
func (st *State) String() string {
	var parts []string
	keys := make([]string, 0, len(st.Scalars))
	for k := range st.Scalars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, st.Scalars[k]))
	}
	akeys := make([]string, 0, len(st.Arrays))
	for k := range st.Arrays {
		akeys = append(akeys, k)
	}
	sort.Strings(akeys)
	for _, k := range akeys {
		for _, w := range st.Arrays[k] {
			parts = append(parts, k+w.String())
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Config parameterizes the Phase-1 run.
type Config struct {
	// Meta is the normalized loop's metadata (index variable, count).
	Meta *normalize.LoopMeta
	// Collapsed maps inner loop labels to their Phase-2 collapse results.
	Collapsed map[string]*CollapsedLoop
	// Budget, when non-nil, is charged per CFG node; an exhausted budget
	// or a canceled context aborts the run with budget.Abort (recovered
	// at the per-function guard in the parallelizer).
	Budget *budget.B
}

// Result is the Phase-1 output.
type Result struct {
	// Final is the SVD at the last node (SVD_stn in the paper).
	Final *State
	// PerNode holds the SVD after each CFG node, indexed by node ID.
	PerNode []*State
	// LVVs lists the loop-variant scalar variables.
	LVVs []string
	// ArraysWritten lists arrays assigned in the loop body.
	ArraysWritten []string
	// Graph is the analyzed CFG.
	Graph *cfg.Graph
}

// AssignedVars returns the scalars and arrays assigned anywhere in the
// loop body (including via collapsed inner loops).
func AssignedVars(body *cminus.Block, collapsed map[string]*CollapsedLoop) (scalars, arrays []string) {
	sset := map[string]bool{}
	aset := map[string]bool{}
	cminus.WalkStmts(body, func(s cminus.Stmt) bool {
		switch x := s.(type) {
		case *cminus.AssignStmt:
			if id, ok := x.LHS.(*cminus.Ident); ok {
				sset[id.Name] = true
			} else if name, _, ok := cminus.ArrayBase(x.LHS); ok {
				aset[name] = true
			}
		case *cminus.ExprStmt:
			if u, ok := x.X.(*cminus.UnaryExpr); ok && (u.Op == "++" || u.Op == "--") {
				if id, ok := u.X.(*cminus.Ident); ok {
					sset[id.Name] = true
				}
			}
		case *cminus.ForStmt:
			// The loop index of a nested loop is also assigned.
			if x.Init != nil {
				if a, ok := x.Init.(*cminus.AssignStmt); ok {
					if id, ok := a.LHS.(*cminus.Ident); ok {
						sset[id.Name] = true
					}
				}
			}
		}
		return true
	})
	for s := range sset {
		scalars = append(scalars, s)
	}
	for a := range aset {
		arrays = append(arrays, a)
	}
	sort.Strings(scalars)
	sort.Strings(arrays)
	return scalars, arrays
}

// Run performs the Phase-1 symbolic execution over the loop body.
func Run(body *cminus.Block, cf *Config) (*Result, error) {
	faults.Inject("phase1.Run", "", cf.Budget)
	g, err := cfg.Build(body)
	if err != nil {
		return nil, err
	}
	scalars, arrays := AssignedVars(body, cf.Collapsed)

	res := &Result{
		LVVs:          scalars,
		ArraysWritten: arrays,
		Graph:         g,
		PerNode:       make([]*State, len(g.Nodes)),
	}

	lvv := map[string]bool{}
	for _, s := range scalars {
		lvv[s] = true
	}

	ex := &executor{cf: cf, lvv: lvv}

	// Per-edge dataflow facts.
	facts := map[*cfg.Edge]edgeFact{}

	for _, n := range g.Nodes {
		// One budget step per CFG node bounds the symbolic execution; the
		// heavy per-node work (unions, proofs) is charged separately by
		// the symbolic layer through the range dictionary.
		cf.Budget.Step(1)
		// Compute the in-state.
		var in *State
		var inCond symbolic.Expr
		switch len(n.Preds) {
		case 0:
			// Entry: initialize every LVV to λ_v.
			in = newState()
			for _, s := range scalars {
				in.Scalars[s] = symbolic.NewLambda(s)
			}
			inCond = nil
		case 1:
			f := facts[n.Preds[0]]
			in, inCond = f.st, f.cond
		default:
			// Merge point: union predecessor values; the path condition
			// reverts to the common prefix (structured CFGs merge branches
			// of a single if, so the merged condition is the enclosing
			// one, which we recover by intersecting string-equal conds).
			var fs []edgeFact
			for _, e := range n.Preds {
				fs = append(fs, facts[e])
			}
			in = mergeStates(fs[0].st, fs[1].st)
			for _, f := range fs[2:] {
				in = mergeStates(in, f.st)
			}
			inCond = commonCond(fs)
		}

		// Apply the node.
		out := in
		switch n.Kind {
		case cfg.NStmt:
			out = in.clone()
			ex.applyStmt(out, n.Stmt, inCond)
		case cfg.NLoop:
			out = in.clone()
			ex.applyCollapsed(out, n.Stmt, inCond)
		}
		res.PerNode[n.ID] = out

		// Propagate along out edges.
		for _, e := range n.Succs {
			f := edgeFact{st: out, cond: inCond}
			if n.Kind == cfg.NBranch {
				c := ex.evalCond(in, n.Cond)
				if e.Cond == cfg.EdgeFalse {
					c = symbolic.Simplify(symbolic.Not{C: c})
				}
				f.cond = conjoin(inCond, c)
				f.st = out.clone()
			}
			facts[e] = f
		}
	}
	res.Final = res.PerNode[g.Exit.ID]
	return res, nil
}

func conjoin(a, b symbolic.Expr) symbolic.Expr {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return symbolic.Simplify(symbolic.And{Conds: []symbolic.Expr{a, b}})
}

// edgeFact is the dataflow fact on one CFG edge: the SVD and the path
// condition under which the edge is reached (nil = unconditional).
type edgeFact struct {
	st   *State
	cond symbolic.Expr
}

// commonCond returns the longest common path condition of the incoming
// facts (nil unless all are string-equal).
func commonCond(fs []edgeFact) symbolic.Expr {
	if len(fs) == 0 {
		return nil
	}
	c := fs[0].cond
	for _, f := range fs[1:] {
		if c == nil || f.cond == nil || c.String() != f.cond.String() {
			return nil
		}
	}
	return c
}

// mergeStates takes the conservative union of two SVDs (may semantics).
func mergeStates(a, b *State) *State {
	out := newState()
	for k, av := range a.Scalars {
		if bv, ok := b.Scalars[k]; ok {
			out.Scalars[k] = symbolic.UnionValues(av, bv)
		} else {
			out.Scalars[k] = av
		}
	}
	for k, bv := range b.Scalars {
		if _, ok := a.Scalars[k]; !ok {
			out.Scalars[k] = bv
		}
	}
	names := map[string]bool{}
	for k := range a.Arrays {
		names[k] = true
	}
	for k := range b.Arrays {
		names[k] = true
	}
	for name := range names {
		out.Arrays[name] = mergeWrites(name, a.Arrays[name], b.Arrays[name])
	}
	return out
}

// mergeWrites unions two write lists for one array. Writes present on only
// one side may not have happened, so their value set gains λ_array.
func mergeWrites(arr string, a, b []ArrayWrite) []ArrayWrite {
	keyed := map[string]ArrayWrite{}
	counts := map[string]int{}
	var order []string
	add := func(w ArrayWrite) {
		k := w.indexKey()
		if prev, ok := keyed[k]; ok {
			keyed[k] = ArrayWrite{Indices: prev.Indices, Value: symbolic.UnionValues(prev.Value, w.Value)}
		} else {
			keyed[k] = w
			order = append(order, k)
		}
		counts[k]++
	}
	for _, w := range a {
		add(w)
	}
	for _, w := range b {
		add(w)
	}
	lam := symbolic.NewLambda(arr)
	var out []ArrayWrite
	for _, k := range order {
		w := keyed[k]
		if counts[k] < 2 && !containsValue(w.Value, lam) {
			w.Value = symbolic.UnionValues(w.Value, lam)
		}
		out = append(out, w)
	}
	return out
}

func containsValue(set symbolic.Expr, v symbolic.Expr) bool {
	if s, ok := set.(symbolic.Set); ok {
		for _, it := range s.Items {
			if symbolic.Equal(it, v) {
				return true
			}
		}
		return false
	}
	return symbolic.Equal(set, v)
}
