package phase1

import (
	"strings"
	"testing"

	"repro/internal/cminus"
	"repro/internal/normalize"
	"repro/internal/symbolic"
)

// analyze normalizes f's first top-level loop and runs Phase 1 on it.
func analyze(t *testing.T, src, fname string) (*Result, *normalize.LoopMeta) {
	t.Helper()
	prog := cminus.MustParse(src)
	fn := prog.Func(fname)
	if fn == nil {
		t.Fatalf("no function %s", fname)
	}
	res := normalize.Func(fn)
	var loop *cminus.ForStmt
	cminus.WalkStmts(res.Func.Body, func(s cminus.Stmt) bool {
		if fs, ok := s.(*cminus.ForStmt); ok && loop == nil {
			loop = fs
			return false
		}
		return true
	})
	if loop == nil {
		t.Fatal("no loop")
	}
	meta := res.Loops[loop.Label]
	if !meta.Eligible {
		t.Fatalf("loop ineligible: %s", meta.Reason)
	}
	out, err := Run(loop.Body, &Config{Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	return out, meta
}

// TestFig5SVD reproduces the paper's Figure 5: the final SVD of the
// normalized Figure 4(b) loop must record
//
//	ind[m] = [λ_ind, ⟨j⟩],  m = [λ_m, ⟨1+λ_m⟩]
func TestFig5SVD(t *testing.T) {
	src := `
void f(int npts, double *xdos, double t, double width, int *ind) {
    int m = 0;
    int j;
    for (j = 0; j < npts; j++) {
        if ((xdos[j] - t) < width)
            ind[m++] = j;
    }
}
`
	res, _ := analyze(t, src, "f")
	final := res.Final

	// m = {λ_m, ⟨1+λ_m⟩}
	m := final.Scalars["m"]
	set, ok := m.(symbolic.Set)
	if !ok || len(set.Items) != 2 {
		t.Fatalf("m = %s, want a 2-element set", m)
	}
	var sawPlain, sawTagged bool
	for _, it := range set.Items {
		if symbolic.Equal(it, symbolic.NewLambda("m")) {
			sawPlain = true
		}
		if tg, ok := it.(symbolic.Tagged); ok && symbolic.Equal(tg.E, symbolic.AddExpr(symbolic.One, symbolic.NewLambda("m"))) {
			sawTagged = true
		}
	}
	if !sawPlain || !sawTagged {
		t.Errorf("m = %s, want {λ_m, ⟨1+λ_m⟩}", m)
	}

	// ind writes: single write at subscript λ_m with value {λ_ind, ⟨j⟩}.
	ws := final.Arrays["ind"]
	if len(ws) != 1 {
		t.Fatalf("ind writes: %v", ws)
	}
	if len(ws[0].Indices) != 1 || !symbolic.Equal(ws[0].Indices[0], symbolic.NewLambda("m")) {
		t.Errorf("ind subscript = %s, want λ_m", ws[0].Indices[0])
	}
	vset, ok := ws[0].Value.(symbolic.Set)
	if !ok || len(vset.Items) != 2 {
		t.Fatalf("ind value = %s", ws[0].Value)
	}
	var sawOld, sawJ bool
	for _, it := range vset.Items {
		if symbolic.Equal(it, symbolic.NewLambda("ind")) {
			sawOld = true
		}
		if tg, ok := it.(symbolic.Tagged); ok && symbolic.Equal(tg.E, symbolic.NewSym("j")) {
			sawJ = true
		}
	}
	if !sawOld || !sawJ {
		t.Errorf("ind value = %s, want [λ_ind, ⟨j⟩]", ws[0].Value)
	}

	// The tags on m's increment and ind's value must be equal.
	mTags := symbolic.TaggedParts(m)
	vTags := symbolic.TaggedParts(ws[0].Value)
	if len(mTags) != 1 || len(vTags) != 1 {
		t.Fatal("expected one tagged part each")
	}
	if !symbolic.Equal(mTags[0].Cond, vTags[0].Cond) {
		t.Errorf("tags differ: %s vs %s", mTags[0].Cond, vTags[0].Cond)
	}
}

// TestAMGFillSVD reproduces Section 3.1 Phase-1: adiag untagged,
// irownnz = [λ, ⟨1+λ⟩], A_rownnz[irownnz] = [λ, ⟨i⟩].
func TestAMGFillSVD(t *testing.T) {
	src := `
void fill(int num_rows, int *A_i, int *A_rownnz) {
    int irownnz = 0;
    int i, adiag;
    for (i = 0; i < num_rows; i++) {
        adiag = A_i[i+1] - A_i[i];
        if (adiag > 0)
            A_rownnz[irownnz++] = i;
    }
}
`
	res, _ := analyze(t, src, "fill")
	final := res.Final
	adiag := final.Scalars["adiag"]
	want := symbolic.SubExpr(
		symbolic.ArrayRef{Name: "A_i", Indices: []symbolic.Expr{symbolic.AddExpr(symbolic.NewSym("i"), symbolic.One)}},
		symbolic.ArrayRef{Name: "A_i", Indices: []symbolic.Expr{symbolic.NewSym("i")}},
	)
	if !symbolic.Equal(adiag, want) {
		t.Errorf("adiag = %s, want %s", adiag, want)
	}
	if len(symbolic.TaggedParts(final.Scalars["irownnz"])) != 1 {
		t.Errorf("irownnz = %s", final.Scalars["irownnz"])
	}
	ws := final.Arrays["A_rownnz"]
	if len(ws) != 1 {
		t.Fatalf("A_rownnz writes: %v", ws)
	}
	// Tag of the write must reference adiag's defining expression (the
	// condition adiag > 0 with adiag's value substituted).
	tags := symbolic.TaggedParts(ws[0].Value)
	if len(tags) != 1 {
		t.Fatal("expected tagged value")
	}
	if !strings.Contains(tags[0].Cond.String(), "A_i") {
		t.Errorf("tag should mention A_i: %s", tags[0].Cond)
	}
}

// TestUAInnerSVD reproduces Section 3.3 Phase-1 for the innermost i-loop
// of Figure 12: the six writes merge into one with dim-1 range [0:5].
func TestUAInnerSVD(t *testing.T) {
	src := `
void transf(int idel[][6][5][5], int LELT) {
    int iel, j, i, ntemp;
    for (iel = 0; iel < LELT; iel++) {
        ntemp = 125*iel;
        for (j = 0; j < 5; j++) {
            for (i = 0; i < 5; i++) {
                idel[iel][0][j][i] = ntemp + i*5 + j*25 + 4;
                idel[iel][1][j][i] = ntemp + i*5 + j*25;
                idel[iel][2][j][i] = ntemp + i + j*25 + 20;
                idel[iel][3][j][i] = ntemp + i + j*25;
                idel[iel][4][j][i] = ntemp + i + j*5 + 100;
                idel[iel][5][j][i] = ntemp + i + j*5;
            }
        }
    }
}
`
	prog := cminus.MustParse(src)
	res := normalize.Func(prog.Func("transf"))
	// Find the innermost loop (L3).
	var inner *cminus.ForStmt
	cminus.WalkStmts(res.Func.Body, func(s cminus.Stmt) bool {
		if fs, ok := s.(*cminus.ForStmt); ok && fs.Label == "L3" {
			inner = fs
		}
		return true
	})
	if inner == nil {
		t.Fatal("no L3")
	}
	out, err := Run(inner.Body, &Config{Meta: res.Loops["L3"]})
	if err != nil {
		t.Fatal(err)
	}
	ws := out.Final.Arrays["idel"]
	if len(ws) != 1 {
		t.Fatalf("writes should merge into one, got %d: %v", len(ws), ws)
	}
	w := ws[0]
	if len(w.Indices) != 4 {
		t.Fatalf("indices: %v", w.Indices)
	}
	if w.Indices[0].String() != "iel" {
		t.Errorf("dim0: %s", w.Indices[0])
	}
	if w.Indices[1].String() != "[0:5]" {
		t.Errorf("dim1: %s", w.Indices[1])
	}
	if w.Indices[2].String() != "j" || w.Indices[3].String() != "i" {
		t.Errorf("dims 2,3: %s %s", w.Indices[2], w.Indices[3])
	}
	vset, ok := w.Value.(symbolic.Set)
	if !ok || len(vset.Items) != 6 {
		t.Fatalf("value should be a 6-element set: %s", w.Value)
	}
	// One of them must be 4 + 5*i + 25*j + ntemp.
	found := false
	for _, it := range vset.Items {
		if it.String() == "4+5*i+25*j+ntemp" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing canonical value in %s", w.Value)
	}
}

// TestCollapsedLoopApplication checks that a collapsed inner loop's
// aggregated assignments are applied with Λ substitution (Figure 2(a)
// pattern: inner loop increments p by [0:m]).
func TestCollapsedLoopApplication(t *testing.T) {
	src := `
void f(int n, int m, int *a, int *c) {
    int i, j, p;
    p = 0;
    for (i = 0; i < n; i++) {
        a[i] = p;
        for (j = 0; j < m; j++) {
            if (c[j] > 0) {
                p = p + 1;
            }
        }
    }
}
`
	prog := cminus.MustParse(src)
	res := normalize.Func(prog.Func("f"))
	var outer *cminus.ForStmt
	cminus.WalkStmts(res.Func.Body, func(s cminus.Stmt) bool {
		if fs, ok := s.(*cminus.ForStmt); ok && fs.Label == "L1" {
			outer = fs
		}
		return true
	})
	collapsed := map[string]*CollapsedLoop{
		"L2": {
			Label: "L2",
			Scalars: map[string]symbolic.Expr{
				"p": symbolic.NewRange(
					symbolic.NewBigLambda("p"),
					symbolic.AddExpr(symbolic.NewBigLambda("p"), symbolic.NewSym("m")),
				),
				"j": symbolic.NewSym("m"),
			},
			Assigned: []string{"p", "j"},
		},
	}
	out, err := Run(outer.Body, &Config{Meta: res.Loops["L1"], Collapsed: collapsed})
	if err != nil {
		t.Fatal(err)
	}
	p := out.Final.Scalars["p"]
	if p.String() != "[λ_p:m+λ_p]" {
		t.Errorf("p = %s, want [λ_p:m+λ_p]", p)
	}
	// a[i] must have been written with the pre-inner-loop value λ_p.
	ws := out.Final.Arrays["a"]
	if len(ws) != 1 || !symbolic.Equal(ws[0].Value, symbolic.NewLambda("p")) {
		t.Errorf("a writes: %v", ws)
	}
}

// TestFailedInnerLoopKills ensures an unanalyzable inner loop kills its
// assigned variables.
func TestFailedInnerLoopKills(t *testing.T) {
	src := `
void f(int n, int m, int *a, int *c) {
    int i, j, p;
    p = 0;
    for (i = 0; i < n; i++) {
        a[i] = p;
        for (j = 0; j < m; j++) {
            p = c[j];
        }
    }
}
`
	prog := cminus.MustParse(src)
	res := normalize.Func(prog.Func("f"))
	var outer *cminus.ForStmt
	cminus.WalkStmts(res.Func.Body, func(s cminus.Stmt) bool {
		if fs, ok := s.(*cminus.ForStmt); ok && fs.Label == "L1" {
			outer = fs
		}
		return true
	})
	collapsed := map[string]*CollapsedLoop{
		"L2": {Label: "L2", Failed: true, Assigned: []string{"p", "j"}},
	}
	out, err := Run(outer.Body, &Config{Meta: res.Loops["L1"], Collapsed: collapsed})
	if err != nil {
		t.Fatal(err)
	}
	if !symbolic.IsBottom(out.Final.Scalars["p"]) {
		t.Errorf("p should be ⊥ after failed inner loop, got %s", out.Final.Scalars["p"])
	}
}

// TestElseBranchTagging: assignments in the else branch get the negated
// condition.
func TestElseBranchTagging(t *testing.T) {
	src := `
void f(int n, int *a, int *b) {
    int i, x;
    x = 0;
    for (i = 0; i < n; i++) {
        if (b[i] > 0) {
            x = 1;
        } else {
            x = 2;
        }
    }
}
`
	res, _ := analyze(t, src, "f")
	x := res.Final.Scalars["x"]
	tags := symbolic.TaggedParts(x)
	if len(tags) != 2 {
		t.Fatalf("x = %s, want two tagged alternatives", x)
	}
	conds := map[string]bool{}
	for _, tg := range tags {
		conds[tg.Cond.String()] = true
	}
	if !conds["b[i]>0"] || !conds["b[i]<=0"] {
		t.Errorf("conds: %v", conds)
	}
}

// TestReadOfModifiedArrayIsBottom: reading an array after writing it in
// the same iteration yields ⊥.
func TestReadOfModifiedArrayIsBottom(t *testing.T) {
	src := `
void f(int n, int *a) {
    int i, x;
    x = 0;
    for (i = 0; i < n; i++) {
        a[i] = i;
        x = a[i];
    }
}
`
	res, _ := analyze(t, src, "f")
	if !symbolic.IsBottom(res.Final.Scalars["x"]) {
		t.Errorf("x = %s, want ⊥", res.Final.Scalars["x"])
	}
}

// TestPrefixSumRead: reading the array before writing it keeps the
// ArrayRef (the Figure 2(b) recurrence pattern).
func TestPrefixSumRead(t *testing.T) {
	src := `
void f(int n, int *a, int k) {
    int i;
    for (i = 1; i < n; i++) {
        a[i] = a[i-1] + k;
    }
}
`
	res, _ := analyze(t, src, "f")
	ws := res.Final.Arrays["a"]
	if len(ws) != 1 {
		t.Fatalf("writes: %v", ws)
	}
	// After lower-bound shift, subscript is i+1 and value a[i]+k.
	if ws[0].Indices[0].String() != "1+i" {
		t.Errorf("subscript: %s", ws[0].Indices[0])
	}
	if ws[0].Value.String() != "a[i]+k" {
		t.Errorf("value: %s", ws[0].Value)
	}
}

func TestStateString(t *testing.T) {
	st := newState()
	st.Scalars["m"] = symbolic.NewLambda("m")
	st.Arrays["ind"] = []ArrayWrite{{
		Indices: []symbolic.Expr{symbolic.NewLambda("m")},
		Value:   symbolic.NewSym("j"),
	}}
	got := st.String()
	if got != "{m=λ_m, ind[λ_m] = j}" {
		t.Errorf("got %s", got)
	}
}
