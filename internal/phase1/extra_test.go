package phase1

import (
	"strings"
	"testing"

	"repro/internal/cminus"
	"repro/internal/normalize"
	"repro/internal/symbolic"
)

// TestTernaryValue: a conditional expression produces a tagged union.
func TestTernaryValue(t *testing.T) {
	src := `
void f(int n, int *c) {
    int i, x;
    x = 0;
    for (i = 0; i < n; i++) {
        x = c[i] > 0 ? 1 : 2;
    }
}
`
	res, _ := analyze(t, src, "f")
	x := res.Final.Scalars["x"]
	tags := symbolic.TaggedParts(x)
	if len(tags) != 2 {
		t.Fatalf("x = %s, want two tagged alternatives", x)
	}
}

// TestCastAndCallValues: casts pass through; pure calls become opaque
// Call atoms.
func TestCastAndCallValues(t *testing.T) {
	src := `
void f(int n, int *a) {
    int i, x, y;
    x = 0;
    y = 0;
    for (i = 0; i < n; i++) {
        x = (int)(i) + 1;
        y = abs(i - n);
    }
}
`
	res, _ := analyze(t, src, "f")
	if got := res.Final.Scalars["x"].String(); got != "1+i" {
		t.Errorf("x = %s", got)
	}
	if got := res.Final.Scalars["y"].String(); !strings.Contains(got, "abs(") {
		t.Errorf("y = %s", got)
	}
}

// TestNestedConditionConjunction: assignments under nested ifs get the
// conjunction of both conditions.
func TestNestedConditionConjunction(t *testing.T) {
	src := `
void f(int n, int *c, int *d) {
    int i, x;
    x = 0;
    for (i = 0; i < n; i++) {
        if (c[i] > 0) {
            if (d[i] > 0) {
                x = 1;
            }
        }
    }
}
`
	res, _ := analyze(t, src, "f")
	tags := symbolic.TaggedParts(res.Final.Scalars["x"])
	if len(tags) != 1 {
		t.Fatalf("x = %s", res.Final.Scalars["x"])
	}
	cond := tags[0].Cond.String()
	if !strings.Contains(cond, "c[i]>0") || !strings.Contains(cond, "d[i]>0") {
		t.Errorf("conjunction missing: %s", cond)
	}
}

// TestMultipleSubscriptsSameArrayKeptSeparate: two writes at unrelated
// symbolic subscripts stay as two write records.
func TestMultipleSubscriptsSameArrayKeptSeparate(t *testing.T) {
	src := `
void f(int n, int p, int q, int *a) {
    int i;
    for (i = 0; i < n; i++) {
        a[p] = i;
        a[q] = i;
    }
}
`
	res, _ := analyze(t, src, "f")
	if len(res.Final.Arrays["a"]) != 2 {
		t.Errorf("writes: %v", res.Final.Arrays["a"])
	}
}

// TestCollapsedArrayWriteApplied: array writes from a collapsed inner loop
// are recorded in the outer analysis with substitution.
func TestCollapsedArrayWriteApplied(t *testing.T) {
	src := `
void f(int n, int m, int *a) {
    int i, j, base;
    for (i = 0; i < n; i++) {
        base = 10*i;
        for (j = 0; j < m; j++) {
            a[base + j] = j;
        }
    }
}
`
	prog := cminus.MustParse(src)
	res := normalize.Func(prog.Func("f"))
	var outer *cminus.ForStmt
	cminus.WalkStmts(res.Func.Body, func(s cminus.Stmt) bool {
		if fs, ok := s.(*cminus.ForStmt); ok && outer == nil {
			outer = fs
		}
		return true
	})
	collapsed := map[string]*CollapsedLoop{
		"L2": {
			Label:   "L2",
			Scalars: map[string]symbolic.Expr{"j": symbolic.NewSym("m")},
			Arrays: map[string][]ArrayWrite{
				"a": {{
					Indices: []symbolic.Expr{symbolic.NewRange(
						symbolic.NewSym("base"),
						symbolic.AddExpr(symbolic.NewSym("base"), symbolic.SubExpr(symbolic.NewSym("m"), symbolic.One)),
					)},
					Value: symbolic.NewRange(symbolic.Zero, symbolic.SubExpr(symbolic.NewSym("m"), symbolic.One)),
				}},
			},
			Assigned: []string{"j", "a"},
		},
	}
	out, err := Run(outer.Body, &Config{Meta: res.Loops["L1"], Collapsed: collapsed})
	if err != nil {
		t.Fatal(err)
	}
	ws := out.Final.Arrays["a"]
	if len(ws) != 1 {
		t.Fatalf("writes: %v", ws)
	}
	// base substituted with 10*i.
	if got := ws[0].Indices[0].String(); got != "[10*i:-1+10*i+m]" {
		t.Errorf("collapsed write index = %s", got)
	}
}

// TestAssignedVarsFindsEverything.
func TestAssignedVarsFindsEverything(t *testing.T) {
	src := `
void f(int n, int *a, int *b) {
    int i, j, x, y;
    for (i = 0; i < n; i++) {
        x = 1;
        y++;
        a[i] = x;
        for (j = 0; j < n; j++) {
            b[j] = y;
        }
    }
}
`
	prog := cminus.MustParse(src)
	res := normalize.Func(prog.Func("f"))
	var outer *cminus.ForStmt
	cminus.WalkStmts(res.Func.Body, func(s cminus.Stmt) bool {
		if fs, ok := s.(*cminus.ForStmt); ok && outer == nil {
			outer = fs
		}
		return true
	})
	scalars, arrays := AssignedVars(outer.Body, nil)
	wantS := map[string]bool{"x": true, "y": true, "j": true}
	for _, s := range scalars {
		delete(wantS, s)
	}
	if len(wantS) > 0 {
		t.Errorf("missing scalars: %v (got %v)", wantS, scalars)
	}
	if len(arrays) != 2 {
		t.Errorf("arrays: %v", arrays)
	}
}

// TestWriteValueBottomRHS: a float RHS records ⊥ value (integer analysis
// only) without corrupting the subscript record.
func TestWriteValueBottomRHS(t *testing.T) {
	src := `
void f(int n, double *y) {
    int i;
    for (i = 0; i < n; i++) {
        y[i] = 0.5;
    }
}
`
	res, _ := analyze(t, src, "f")
	ws := res.Final.Arrays["y"]
	if len(ws) != 1 {
		t.Fatalf("writes: %v", ws)
	}
	if ws[0].Indices[0].String() != "i" {
		t.Errorf("subscript: %s", ws[0].Indices[0])
	}
	if !symbolic.IsBottom(ws[0].Value) {
		t.Errorf("value should be ⊥: %s", ws[0].Value)
	}
}
