package subsub

import (
	"strings"
	"testing"
)

const quickstartSrc = `
void fill(int npts, double *xdos, double t, double width, int *ind, int *count) {
    int m = 0;
    int j;
    for (j = 0; j < npts; j++) {
        if ((xdos[j] - t) < width)
            ind[m++] = j;
    }
    count[0] = m;
}
void apply(int numPlaced, int m_max, int *ind, double *xdos, double *y,
           double gamma2, double t, double sigma2) {
    int j;
    for (j = 0; j < numPlaced; j++) {
        y[ind[j]] = y[ind[j]] + gamma2 * exp(-((xdos[ind[j]] - t) * (xdos[ind[j]] - t)) / sigma2);
    }
}
`

// TestPublicAPIEndToEnd drives the whole pipeline through the public API
// on the paper's Figure 1/4 example (the EVSL loop).
func TestPublicAPIEndToEnd(t *testing.T) {
	res, err := Analyze(quickstartSrc, Options{Level: New})
	if err != nil {
		t.Fatal(err)
	}
	// The property of ind: intermittent strictly monotonic.
	props := res.Properties()
	if len(props) == 0 {
		t.Fatal("no properties determined")
	}
	found := false
	for _, p := range props {
		if p.Array == "ind" && p.Strict {
			found = true
		}
	}
	if !found {
		t.Errorf("ind should be strictly monotonic: %v", props)
	}
	// The apply loop is parallelized with a runtime check.
	annotated := res.AnnotatedSource()
	if !strings.Contains(annotated, "#pragma omp parallel for if(-1+numPlaced<=m_max)") {
		t.Errorf("annotated source:\n%s", annotated)
	}
	// Classical cannot parallelize it.
	resC, err := Analyze(quickstartSrc, Options{Level: Classical})
	if err != nil {
		t.Fatal(err)
	}
	if loops := resC.ParallelLoops()["apply"]; len(loops) != 0 {
		t.Errorf("classical should not parallelize apply: %v", loops)
	}
}

// TestVerifyAPI: the Verify helper proves parallel == serial on real
// data.
func TestVerifyAPI(t *testing.T) {
	res, err := Analyze(quickstartSrc, Options{Level: New})
	if err != nil {
		t.Fatal(err)
	}
	n := int64(500)
	xdos := NewFloatArray("xdos", n)
	for i := int64(0); i < n; i++ {
		xdos.Flts[i] = float64(i%37) * 0.11
	}
	ind := NewIntArray("ind", n)
	count := NewIntArray("count", 1)

	m, err := res.NewMachine(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Call("fill", n, xdos, 0.5, 2.0, ind, count); err != nil {
		t.Fatal(err)
	}
	numPlaced := count.Ints[0]
	if numPlaced == 0 {
		t.Fatal("degenerate input")
	}
	y := NewFloatArray("y", n)
	worst, err := res.Verify("apply", 4,
		[]Arg{numPlaced, numPlaced, ind, xdos, y, 0.7, 0.5, 3.0},
		[]string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-12 {
		t.Errorf("parallel/serial divergence %g", worst)
	}
}
