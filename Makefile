# Build/test gates for the subscripted-subscript analysis repo.
#
#   make check   — the full pre-merge gate: fmt + vet + tests + race
#                  detector + one-iteration bench smoke
#   make fmt     — fail if any file is not gofmt-clean
#   make race    — go test -race ./... (the concurrent driver, the
#                  sharded symbolic cache, and the parallel loop driver
#                  of the compiled engine must stay race-clean)
#   make fuzz    — short fuzz session over the parser and simplifier
#   make bench   — batch-driver, cache, and interpreter benchmarks

GO ?= go

.PHONY: build fmt vet test race check fuzz bench benchsmoke experiments

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: catches compile-pass and harness
# regressions in the gate without waiting for stable numbers.
benchsmoke:
	$(GO) test -run NONE -bench 'BenchmarkInterp' -benchtime=1x ./internal/corpus/

check: fmt vet test race benchsmoke

fuzz:
	$(GO) test -run FuzzParse -fuzz FuzzParse -fuzztime 20s ./internal/cminus/
	$(GO) test -run FuzzSimplify -fuzz FuzzSimplify -fuzztime 20s ./internal/symbolic/

bench:
	$(GO) test -run NONE -bench 'AnalyzeBatch|SimplifyCached|BenchmarkInterp' -benchmem ./...

experiments:
	$(GO) run ./cmd/benchrunner -experiment all
