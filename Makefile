# Build/test gates for the subscripted-subscript analysis repo.
#
#   make check   — the full pre-merge gate: vet + tests + race detector
#   make race    — go test -race ./... (the concurrent driver and the
#                  sharded symbolic cache must stay race-clean)
#   make fuzz    — short fuzz session over the parser and simplifier
#   make bench   — batch-driver and cache micro-benchmarks

GO ?= go

.PHONY: build vet test race check fuzz bench experiments

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: vet test race

fuzz:
	$(GO) test -run FuzzParse -fuzz FuzzParse -fuzztime 20s ./internal/cminus/
	$(GO) test -run FuzzSimplify -fuzz FuzzSimplify -fuzztime 20s ./internal/symbolic/

bench:
	$(GO) test -run NONE -bench 'AnalyzeBatch|SimplifyCached' -benchmem ./...

experiments:
	$(GO) run ./cmd/benchrunner -experiment all
