# Build/test gates for the subscripted-subscript analysis repo.
#
#   make check   — the full pre-merge gate: fmt + vet + build (including
#                  the subsubd daemon) + tests + race detector +
#                  one-iteration bench smoke + daemon serve smoke
#   make fmt     — fail if any file is not gofmt-clean
#   make race    — go test -race ./... (the concurrent driver, the
#                  sharded symbolic cache, the parallel loop driver of
#                  the compiled engine, and the serving layer must stay
#                  race-clean)
#   make serve-smoke — start the subsubd daemon, fire one request from
#                  examples/daemon over real loopback HTTP twice (miss
#                  then content-addressed hit), validate the JSON and
#                  /metrics, and shut down gracefully
#   make fuzz-smoke — 5s whole-pipeline fuzz (FuzzAnalyze) as a gate step
#   make vm-differential — three-engine corpus bit-identity (tree vs
#                  compiled vs bytecode VM) under the race detector
#   make codegen-differential — native-code differential: emit every
#                  corpus kernel as a standalone parallel Go package,
#                  go vet + build it with -race, run serial / 8-worker /
#                  guard-forced, and require bit-identity with the VM
#   make property-soundness — the injectivity/permutation fact battery:
#                  adversarial near-miss suite, scatter dependence tests,
#                  and the serial-vs-parallel scatter differential, all
#                  under the race detector
#   make fault-e2e — fault-injection daemon tests (stall/panic/budget
#                  failpoints) under the race detector
#   make chaos-e2e — the fleet chaos gate: consistent-hash ring, circuit
#                  breaker, crash-safe store, and the 3-node kill/revive
#                  chaos suite, all under the race detector
#   make incr-differential — the incremental-analysis gate: edit-script
#                  byte-identity vs cold runs (serial and 8-worker),
#                  callee-hash invalidation, the unit store and session
#                  table, and the /v1/session + delta_of HTTP suites,
#                  all under the race detector
#   make fuzz    — short fuzz session over the parser and simplifier
#   make bench   — batch-driver, cache, and interpreter benchmarks

GO ?= go

.PHONY: build fmt vet test race check fuzz fuzz-smoke fault-e2e chaos-e2e bench benchsmoke serve-smoke trace-smoke property-soundness codegen-differential incr-differential experiments

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: catches compile-pass and harness
# regressions in the gate without waiting for stable numbers.
# BenchmarkInterp covers all three engines (tree, compiled, vm), so the
# bytecode VM is exercised end to end here too.
benchsmoke:
	$(GO) test -run NONE -bench 'BenchmarkInterp' -benchtime=1x ./internal/corpus/

# Three-engine corpus bit-identity: the tree oracle, the closure engine
# and the bytecode VM must produce byte-identical outputs over the
# Table-1 corpus plus the scatter extension, serial and multi-worker,
# under the race detector; the VM fuzz seed corpus must replay clean.
vm-differential:
	$(GO) test -race -run 'TestDifferential|TestScatterSerialVsParallel|TestVM' \
		./internal/corpus/ ./internal/interp/

# End-to-end daemon smoke: binds an ephemeral loopback port, replays the
# example request twice (expecting a fresh analysis, then a byte-identical
# content-addressed cache hit), and checks /metrics and /v1/health.
serve-smoke:
	$(GO) run ./cmd/subsubd -selfcheck examples/daemon/request.json

# CLI tracing smoke: analyze two real benchmarks with -trace, which
# validates the emitted Chrome trace-event JSON before writing it, then
# double-check the profile parses and names the pipeline stages.
trace-smoke:
	@tmp="$$(mktemp /tmp/subsubcc-trace.XXXXXX.json)"; \
	trap 'rm -f "$$tmp"' EXIT; \
	$(GO) run ./cmd/subsubcc -trace "$$tmp" testdata/sddmm.c testdata/cg.c >/dev/null || exit 1; \
	grep -q '"traceEvents"' "$$tmp" || { echo "trace-smoke: no traceEvents in $$tmp" >&2; exit 1; }; \
	for stage in parse phase1 phase2 depend annotate; do \
		grep -q "\"cat\": \"$$stage\"" "$$tmp" || { echo "trace-smoke: no $$stage span" >&2; exit 1; }; \
	done; \
	echo "trace-smoke ok"

# Whole-pipeline fuzz smoke: parse → analyze → re-analyze annotated
# output under a step budget and deadline. -fuzz accepts one package.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzAnalyze -fuzztime 5s ./internal/core/

# Property-lattice soundness gate: the adversarial injectivity battery
# (near-misses must stay unclassified), the scatter dependence and
# regression-pin tests, the lattice unit tests, and the scatter
# serial-vs-8-worker bit-identity differential — all with -race so the
# parallelized a[p[i]] writes are also checked for data races.
property-soundness:
	$(GO) test -race -run 'TestInjectivity|TestLattice|TestBestSelectors|TestInvalidateAndReplace|TestScatter|TestUAPinned' \
		./internal/phase2/ ./internal/property/ ./internal/depend/ ./internal/corpus/

# Fault-injection end-to-end: deterministic failpoints (stall, panic,
# budget exhaustion) driven through the daemon's real HTTP stack, under
# the race detector.
fault-e2e:
	$(GO) test -race -run 'TestFault|TestBudgetExhausted|TestHealthzReadyz|TestReadyz' ./internal/server/

# Native-code differential: every corpus kernel (scatter extension
# included) is emitted as a standalone Go main package, go-vetted, built
# with -race, and executed serial / 8-worker / guard-forced; array end
# states must be bit-identical to the bytecode VM and the region
# counters must match (forced guard failures must all take the serial
# fallback). Reduction lowering gets its own differential (the corpus
# kernels carry none), and the golden-file tests pin emitted source
# byte-for-byte.
codegen-differential:
	$(GO) test -race -run 'TestCodegenDifferential|TestReductionDifferential|TestGoldenEmit|TestEmitAllKernels' \
		./internal/codegen/

# Fleet chaos gate: the sharded-fleet building blocks (ring determinism,
# breaker state machine, crash-safe store) plus the 3-node chaos suite —
# peers stalled, dropped, 5xx'd, killed and revived, store writes
# crashed and entries corrupted — with zero client-visible errors and
# byte-identity against a standalone node, all under the race detector.
chaos-e2e:
	$(GO) test -race -run 'TestRing|TestBreaker|TestFill|TestProbe|TestStop|TestCluster|TestChaos|TestDrain' \
		./internal/cluster/ ./internal/server/
	$(GO) test -race ./internal/store/

# Incremental-analysis gate: replaying the edit script (rename / add
# loop / delete function / reorder) through a shared unit store must be
# byte-identical to cold runs serially and with 8 workers; editing a
# callee must invalidate its transitive callers; the session table and
# /v1/session + delta_of endpoints must hold their bounds — all under
# the race detector.
incr-differential:
	$(GO) test -race -run 'TestIncr|TestSession|TestDelta' \
		./internal/incr/ ./internal/core/ ./internal/server/

check: fmt vet build test race benchsmoke vm-differential codegen-differential serve-smoke trace-smoke fuzz-smoke property-soundness fault-e2e chaos-e2e incr-differential

fuzz:
	$(GO) test -run FuzzParse -fuzz FuzzParse -fuzztime 20s ./internal/cminus/
	$(GO) test -run FuzzSimplify -fuzz FuzzSimplify -fuzztime 20s ./internal/symbolic/

bench:
	$(GO) test -run NONE -bench 'AnalyzeBatch|SimplifyCached|BenchmarkInterp' -benchmem ./...

experiments:
	$(GO) run ./cmd/benchrunner -experiment all
