package subsub

// Determinism tests for the concurrent batch driver: a parallel
// AnalyzeBatch must be byte-identical to the serial one — annotated
// sources, plan summaries and property databases alike — no matter how
// the worker pool interleaves.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/corpus"
)

// fingerprint captures everything user-visible about one analysis result.
func fingerprint(r *Result) string {
	return r.AnnotatedSource() + "\n----\n" + r.Summary() + "\n----\n" + r.Plan.Props.String()
}

// corpusSources returns the 12 Table-1 benchmarks plus the scatter
// extension as batch inputs, so the byte-identity check also covers the
// injectivity recognizer and the swap-preservation transform.
func corpusSources() []Source {
	srcs := bench.CorpusSources()
	for _, b := range corpus.Scatter() {
		srcs = append(srcs, Source{Name: b.Name, Src: b.Source})
	}
	return srcs
}

// TestAnalyzeBatchDeterministic analyzes the whole corpus with one worker
// to fix the baseline, then re-runs with 8 workers five times and demands
// byte-identical annotated source, summary and property-DB dumps.
func TestAnalyzeBatchDeterministic(t *testing.T) {
	srcs := corpusSources()
	if len(srcs) != len(corpus.Extended()) {
		t.Fatalf("corpus sources: got %d, want %d", len(srcs), len(corpus.All()))
	}

	baseline := AnalyzeBatch(srcs, Options{Workers: 1})
	want := make(map[string]string, len(baseline))
	for _, br := range baseline {
		if br.Err != nil {
			t.Fatalf("serial analysis of %s failed: %v", br.Name, br.Err)
		}
		want[br.Name] = fingerprint(br.Res)
	}

	for rep := 0; rep < 5; rep++ {
		got := AnalyzeBatch(srcs, Options{Workers: 8})
		if len(got) != len(srcs) {
			t.Fatalf("rep %d: got %d results, want %d", rep, len(got), len(srcs))
		}
		for i, br := range got {
			if br.Name != srcs[i].Name {
				t.Fatalf("rep %d: result %d is %q, want %q (order must match input)", rep, i, br.Name, srcs[i].Name)
			}
			if br.Err != nil {
				t.Fatalf("rep %d: parallel analysis of %s failed: %v", rep, br.Name, br.Err)
			}
			if fp := fingerprint(br.Res); fp != want[br.Name] {
				t.Errorf("rep %d: %s: parallel output differs from serial baseline:\n--- serial ---\n%s\n--- parallel ---\n%s",
					rep, br.Name, want[br.Name], fp)
			}
		}
	}
}

// TestAnalyzeWorkersDeterministic drives the per-program concurrent
// driver (Pass 1 + nest planning over the worker pool) at several worker
// counts on a multi-function program and demands identical plans.
func TestAnalyzeWorkersDeterministic(t *testing.T) {
	var src string
	for f := 0; f < 6; f++ {
		src += fmt.Sprintf(`
void kernel%d(double *y, double *x, int *ind%d, int n) {
  int i;
  for (i = 0; i < n; i++) {
    ind%d[i] = ind%d[i] + 1;
  }
  for (i = 0; i < n; i++) {
    y[ind%d[i]] = y[ind%d[i]] + x[i];
  }
}
`, f, f, f, f, f, f)
	}
	base, err := Analyze(src, Options{Level: New, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(base)
	for _, workers := range []int{2, 4, 8} {
		for rep := 0; rep < 3; rep++ {
			res, err := Analyze(src, Options{Level: New, Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d rep=%d: %v", workers, rep, err)
			}
			if fp := fingerprint(res); fp != want {
				t.Errorf("workers=%d rep=%d: plan differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
					workers, rep, want, fp)
			}
		}
	}
}

// TestAnalyzeBatchErrorIsolation: a broken source must fail alone without
// poisoning the rest of the batch.
func TestAnalyzeBatchErrorIsolation(t *testing.T) {
	srcs := []Source{
		{Name: "ok", Src: "void f(int *a, int n) { int i; for (i = 0; i < n; i++) { a[i] = i; } }"},
		{Name: "broken", Src: "void g(int *a { THIS IS NOT C"},
	}
	out := AnalyzeBatch(srcs, Options{Workers: 4, Level: New})
	if out[0].Err != nil || out[0].Res == nil {
		t.Errorf("good source failed: %v", out[0].Err)
	}
	if out[1].Err == nil {
		t.Error("broken source did not report an error")
	}
}
