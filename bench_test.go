package subsub

// One testing.B benchmark per evaluation artifact (Table 1, Figures
// 13-17), plus benchmarks of the analysis itself. Each experiment
// benchmark regenerates its table/figure through the harness in
// internal/bench; run `go run ./cmd/benchrunner` for the full-scale
// printed output and EXPERIMENTS.md for paper-vs-measured numbers.

import (
	"io"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/corpus"
	"repro/internal/phase2"
)

var (
	harnessOnce sync.Once
	harness     *bench.Harness
)

// quickHarness calibrates once and reuses the harness across benchmarks.
func quickHarness() *bench.Harness {
	harnessOnce.Do(func() {
		harness = bench.New(io.Discard, true)
	})
	return harness
}

// BenchmarkTable1 regenerates Table 1 (serial execution times).
func BenchmarkTable1(b *testing.B) {
	h := quickHarness()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := h.Table1()
		if len(rows) < 12 {
			b.Fatal("table incomplete")
		}
	}
}

// BenchmarkFig13 regenerates Figure 13 (with vs without the analysis).
func BenchmarkFig13(b *testing.B) {
	h := quickHarness()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := h.Fig13()
		if len(data) != 3 {
			b.Fatal("figure incomplete")
		}
	}
}

// BenchmarkFig14 regenerates Figure 14 (improvement over serial).
func BenchmarkFig14(b *testing.B) {
	h := quickHarness()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := h.Fig14()
		if len(data) != 3 {
			b.Fatal("figure incomplete")
		}
	}
}

// BenchmarkFig15 regenerates Figure 15 (parallel efficiency).
func BenchmarkFig15(b *testing.B) {
	h := quickHarness()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := h.Fig15()
		if len(data) != 3 {
			b.Fatal("figure incomplete")
		}
	}
}

// BenchmarkFig16 regenerates Figure 16 (dynamic vs static scheduling).
func BenchmarkFig16(b *testing.B) {
	h := quickHarness()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := h.Fig16()
		if len(rows) != 12 {
			b.Fatal("figure incomplete")
		}
	}
}

// BenchmarkFig17 regenerates Figure 17 (the three analysis arms over all
// twelve benchmarks).
func BenchmarkFig17(b *testing.B) {
	h := quickHarness()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := h.Fig17()
		if len(rows) != 12 {
			b.Fatal("figure incomplete")
		}
	}
}

// BenchmarkAblation regenerates the capability-ablation table.
func BenchmarkAblation(b *testing.B) {
	h := quickHarness()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := h.Ablation()
		if len(rows) != 12 {
			b.Fatal("ablation incomplete")
		}
	}
}

// BenchmarkCompileTime regenerates the analysis-cost table.
func BenchmarkCompileTime(b *testing.B) {
	h := quickHarness()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := h.CompileTime()
		if len(rows) != 12 {
			b.Fatal("compile-time table incomplete")
		}
	}
}

// BenchmarkAnalysisAMG measures the compile-time cost of the full
// analysis pipeline on the AMGmk program (parse → normalize → Phase 1 →
// Phase 2 → dependence test → plan).
func BenchmarkAnalysisAMG(b *testing.B) {
	src := corpus.AMGmk.Source
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Analyze(src, Options{Level: New})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Properties()) == 0 {
			b.Fatal("no properties")
		}
	}
}

// BenchmarkAnalysisCorpus measures the analysis over the whole 12-program
// corpus at every level.
func BenchmarkAnalysisCorpus(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, bm := range corpus.All() {
			for _, lvl := range []phase2.Level{phase2.LevelClassical, phase2.LevelBase, phase2.LevelNew} {
				corpus.PlanFor(bm, lvl)
			}
		}
	}
}

// BenchmarkAnalyzeBatch compares the serial and concurrent batch drivers
// over the whole 12-benchmark corpus (the compiletime experiment's
// speedup measurement, as a testing.B benchmark).
func BenchmarkAnalyzeBatch(b *testing.B) {
	srcs := corpusSources()
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, br := range AnalyzeBatch(srcs, Options{Workers: workers}) {
				if br.Err != nil {
					b.Fatal(br.Err)
				}
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) {
		w := runtime.GOMAXPROCS(0)
		if w < 2 {
			w = 2
		}
		run(b, w)
	})
}
