// Package subsub is the public API of the subscripted-subscript
// recurrence analysis library — a reproduction of "Recurrence Analysis
// for Automatic Parallelization of Subscripted Subscripts" (Bhosale &
// Eigenmann, PPoPP 2024).
//
// The library parses programs written in a C subset, determines
// monotonicity properties of subscript (index) arrays by symbolic
// recurrence analysis — including the paper's two novel properties,
// intermittent monotonicity of one-dimensional arrays and
// (range-)monotonicity of multi-dimensional arrays — and uses them to
// automatically parallelize loops with subscripted-subscript patterns
// such as y[ind[i]].
//
// Quick start:
//
//	res, err := subsub.Analyze(src, subsub.Options{Level: subsub.New})
//	if err != nil { ... }
//	fmt.Println(res.Summary())          // properties + per-loop decisions
//	fmt.Println(res.AnnotatedSource())  // OpenMP-annotated program
//	m, _ := res.NewMachine(8)           // parallel executor for the plan
//
// Three analysis levels mirror the paper's experimental arms: Classical
// (no array analysis), Base (the prior ICS'21 approach: simple scalar
// recurrences and contiguous scalar-recurrence array assignments) and New
// (this paper: intermittent and multi-dimensional monotonicity).
package subsub

import (
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/property"
)

// Level selects the analysis capability.
type Level = core.Level

// Analysis capability levels (the paper's three experimental arms).
const (
	Classical = core.Classical
	Base      = core.Base
	New       = core.New
)

// Options configures an analysis.
type Options = core.Options

// Result is a completed analysis: properties, plan, annotated source and
// an executable machine.
type Result = core.Result

// ArrayProperty is a monotonicity fact about a subscript array.
type ArrayProperty = property.ArrayProperty

// Machine executes analyzed programs (serially or per the plan).
type Machine = interp.Machine

// Arg is an argument to a program function: a scalar (int64, float64) or
// an *Array.
type Arg = interp.Arg

// Array is a (multi-dimensional) array value passed to program functions.
type Array = interp.Array

// NewIntArray allocates an integer array for program arguments.
func NewIntArray(name string, dims ...int64) *Array {
	return interp.NewIntArray(name, dims...)
}

// NewFloatArray allocates a double array for program arguments.
func NewFloatArray(name string, dims ...int64) *Array {
	return interp.NewFloatArray(name, dims...)
}

// Analyze parses a mini-C program and runs the recurrence analysis and
// automatic parallelizer at the configured level.
func Analyze(src string, opt Options) (*Result, error) {
	return core.Analyze(src, opt)
}

// Source is one named program in a batch analysis.
type Source = core.Source

// BatchResult pairs one batch source with its analysis outcome.
type BatchResult = core.BatchResult

// AnalyzeBatch analyzes many programs in one invocation, fanning out over
// Options.Workers goroutines (0 or 1 = serial). Results come back in
// input order and are guaranteed bit-identical for every worker count —
// plans, annotated sources and property databases all match the serial
// driver byte for byte.
func AnalyzeBatch(sources []Source, opt Options) []*BatchResult {
	return core.AnalyzeBatch(sources, opt)
}
